// Package bus implements the lightweight local buses adjacent to the
// daelite network and the shells that serialize bus transactions into
// network messages (the platform of Fig. 3). IPs are connected to local
// buses which only (de)multiplex transactions to and from different
// network connections; network shells serialize these requests into
// network messages.
//
// The transaction format on a channel is deliberately simple (a DTL-like
// subset): a command word, an address word, then the payload.
//
//	cmd  = kind<<31 | length          (kind 1 = write, 0 = read)
//	addr = byte address
//	data = length words (writes only)
//
// Read responses travel on the reverse channel of the connection as plain
// data words. The bus address map (which 4 KiB page belongs to which
// channel) is itself configurable through the NI shell's RegBus interface:
// one 28-bit configuration word per mapping, channel<<24 | page.
package bus

import (
	"fmt"

	"daelite/internal/ni"
	"daelite/internal/phit"
	"daelite/internal/sim"
)

// Kind distinguishes transaction kinds.
type Kind int

const (
	// Read requests length words starting at Addr.
	Read Kind = iota
	// Write carries length words to store at Addr.
	Write
)

// Transaction is one bus operation issued by an IP.
type Transaction struct {
	Kind Kind
	Addr uint32
	Data []phit.Word // words to write, or space hint for reads (len used)
}

// encode serializes the request into words.
func (t Transaction) encode() ([]phit.Word, error) {
	if len(t.Data) == 0 || len(t.Data) > 0x7FFF {
		return nil, fmt.Errorf("bus: transaction length %d out of range", len(t.Data))
	}
	cmd := phit.Word(len(t.Data))
	if t.Kind == Write {
		cmd |= 1 << 31
	}
	words := []phit.Word{cmd, phit.Word(t.Addr)}
	if t.Kind == Write {
		words = append(words, t.Data...)
	}
	return words, nil
}

// Target is the memory-mapped IP behind a target shell.
type Target interface {
	// ReadWord returns the word at the byte address.
	ReadWord(addr uint32) phit.Word
	// WriteWord stores a word at the byte address.
	WriteWord(addr uint32, w phit.Word)
}

// Memory is a simple word-addressable Target.
type Memory struct {
	words map[uint32]phit.Word
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{words: make(map[uint32]phit.Word)} }

// ReadWord implements Target.
func (m *Memory) ReadWord(addr uint32) phit.Word { return m.words[addr&^3] }

// WriteWord implements Target.
func (m *Memory) WriteWord(addr uint32, w phit.Word) { m.words[addr&^3] = w }

// AddressMap maps 4 KiB pages to NI channels.
type AddressMap struct {
	pages map[uint32]int // page number -> channel
}

// NewAddressMap returns an empty map.
func NewAddressMap() *AddressMap { return &AddressMap{pages: make(map[uint32]int)} }

// Map binds the 4 KiB page containing base to channel ch.
func (a *AddressMap) Map(base uint32, ch int) { a.pages[base>>12] = ch }

// Lookup returns the channel owning addr.
func (a *AddressMap) Lookup(addr uint32) (int, bool) {
	ch, ok := a.pages[addr>>12]
	return ch, ok
}

// ConfigWrite implements ni.BusConfigPort: one 28-bit word per mapping,
// channel<<24 | page.
func (a *AddressMap) ConfigWrite(value uint32) {
	ch := int(value >> 24 & 0xF)
	page := value & 0xFFFFFF
	a.pages[page] = ch
}

// MapConfigWord builds the 28-bit configuration word for Map(base, ch),
// for transmission through the configuration tree's RegBus writes.
func MapConfigWord(base uint32, ch int) uint32 {
	return uint32(ch&0xF)<<24 | base>>12
}

// Initiator is the IP-side bus plus shell: it demultiplexes transactions
// onto connections by address and serializes them into the NI's channel
// queues. Read responses are collected per channel.
type Initiator struct {
	name string
	ni   *ni.NI
	amap *AddressMap

	// queue of encoded words per channel still to be pushed into the NI
	pending map[int][]phit.Word
	// outstanding read lengths per channel, FIFO
	reads map[int][]int
	// completed read results in completion order
	results []ReadResult
	// collect buffers per channel
	collect map[int][]phit.Word
}

// ReadResult is one completed read transaction.
type ReadResult struct {
	Channel int
	Data    []phit.Word
	Cycle   uint64
}

// NewInitiator builds an initiator bus/shell in front of an NI.
func NewInitiator(s *sim.Simulator, name string, n *ni.NI, amap *AddressMap) *Initiator {
	b := &Initiator{
		name:    name,
		ni:      n,
		amap:    amap,
		pending: make(map[int][]phit.Word),
		reads:   make(map[int][]int),
		collect: make(map[int][]phit.Word),
	}
	s.Add(b)
	return b
}

// Name implements sim.Component.
func (b *Initiator) Name() string { return b.name }

// Issue submits a transaction; the bus resolves the channel by address.
func (b *Initiator) Issue(t Transaction) error {
	ch, ok := b.amap.Lookup(t.Addr)
	if !ok {
		return fmt.Errorf("bus %s: no mapping for address %#x", b.name, t.Addr)
	}
	words, err := t.encode()
	if err != nil {
		return err
	}
	b.pending[ch] = append(b.pending[ch], words...)
	if t.Kind == Read {
		b.reads[ch] = append(b.reads[ch], len(t.Data))
	}
	return nil
}

// PendingWords returns the number of serialized words not yet handed to
// the NI for channel ch.
func (b *Initiator) PendingWords(ch int) int { return len(b.pending[ch]) }

// PopResult returns the next completed read, if any.
func (b *Initiator) PopResult() (ReadResult, bool) {
	if len(b.results) == 0 {
		return ReadResult{}, false
	}
	r := b.results[0]
	b.results = b.results[1:]
	return r, true
}

// Eval implements sim.Component: drain pending words into the NI and
// collect read responses.
func (b *Initiator) Eval(cycle uint64) {
	for ch, words := range b.pending {
		n := 0
		for n < len(words) && b.ni.Send(ch, words[n]) {
			n++
		}
		b.pending[ch] = words[n:]
	}
	for ch, lens := range b.reads {
		if len(lens) == 0 {
			continue
		}
		for {
			d, ok := b.ni.Recv(ch)
			if !ok {
				break
			}
			b.collect[ch] = append(b.collect[ch], d.Word)
			if len(b.collect[ch]) == lens[0] {
				b.results = append(b.results, ReadResult{Channel: ch, Data: b.collect[ch], Cycle: cycle})
				b.collect[ch] = nil
				lens = lens[1:]
				b.reads[ch] = lens
				if len(lens) == 0 {
					break
				}
			}
		}
	}
}

// Commit implements sim.Component.
func (b *Initiator) Commit() {}

// TargetShell deserializes channel messages arriving at an NI back into
// bus transactions and applies them to a Target, sending read data back on
// the same channel's reverse direction.
type TargetShell struct {
	name   string
	ni     *ni.NI
	target Target

	// per-channel deserializer state
	st map[int]*deser
	// response words per channel awaiting NI queue space
	resp map[int][]phit.Word

	writesApplied uint64
	readsServed   uint64
}

type deser struct {
	have  []phit.Word
	need  int // words still missing for the current transaction
	kind  Kind
	addr  uint32
	count int
}

// NewTargetShell builds a target shell behind an NI.
func NewTargetShell(s *sim.Simulator, name string, n *ni.NI, target Target) *TargetShell {
	t := &TargetShell{
		name:   name,
		ni:     n,
		target: target,
		st:     make(map[int]*deser),
		resp:   make(map[int][]phit.Word),
	}
	s.Add(t)
	return t
}

// Name implements sim.Component.
func (t *TargetShell) Name() string { return t.name }

// Stats returns counts of applied writes and served reads.
func (t *TargetShell) Stats() (writes, reads uint64) { return t.writesApplied, t.readsServed }

// WatchChannel registers a channel for deserialization.
func (t *TargetShell) WatchChannel(ch int) {
	if _, ok := t.st[ch]; !ok {
		t.st[ch] = &deser{}
	}
}

// Eval implements sim.Component.
func (t *TargetShell) Eval(cycle uint64) {
	for ch, d := range t.st {
		// Push out queued response words first.
		rw := t.resp[ch]
		n := 0
		for n < len(rw) && t.ni.Send(ch, rw[n]) {
			n++
		}
		t.resp[ch] = rw[n:]

		for {
			w, ok := t.ni.Recv(ch)
			if !ok {
				break
			}
			t.feed(ch, d, w.Word)
		}
	}
}

func (t *TargetShell) feed(ch int, d *deser, w phit.Word) {
	d.have = append(d.have, w)
	if len(d.have) == 1 {
		if w&(1<<31) != 0 {
			d.kind = Write
		} else {
			d.kind = Read
		}
		d.count = int(w & 0x7FFF)
		return
	}
	if len(d.have) == 2 {
		d.addr = uint32(w)
		if d.kind == Read {
			// Serve immediately: queue response words.
			for i := 0; i < d.count; i++ {
				t.resp[ch] = append(t.resp[ch], t.target.ReadWord(d.addr+uint32(4*i)))
			}
			t.readsServed++
			d.have = d.have[:0]
		}
		return
	}
	// Write payload word.
	idx := len(d.have) - 3
	t.target.WriteWord(d.addr+uint32(4*idx), w)
	if idx == d.count-1 {
		t.writesApplied++
		d.have = d.have[:0]
	}
}

// Commit implements sim.Component.
func (t *TargetShell) Commit() {}
