package bus

import (
	"testing"

	"daelite/internal/core"
	"daelite/internal/phit"
	"daelite/internal/topology"
)

func TestMemory(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0x100, 0xAB)
	if m.ReadWord(0x100) != 0xAB {
		t.Fatal("read-after-write failed")
	}
	// Word addressing ignores the low two bits.
	if m.ReadWord(0x102) != 0xAB {
		t.Fatal("sub-word addressing broken")
	}
	if m.ReadWord(0x200) != 0 {
		t.Fatal("uninitialized memory not zero")
	}
}

func TestAddressMap(t *testing.T) {
	a := NewAddressMap()
	a.Map(0x4000_0000, 3)
	if ch, ok := a.Lookup(0x4000_0FFC); !ok || ch != 3 {
		t.Fatalf("lookup in page = %d %v", ch, ok)
	}
	if _, ok := a.Lookup(0x4000_1000); ok {
		t.Fatal("lookup outside page succeeded")
	}
	// Config-word round trip.
	a2 := NewAddressMap()
	a2.ConfigWrite(MapConfigWord(0x4000_0000, 3))
	if ch, ok := a2.Lookup(0x4000_0800); !ok || ch != 3 {
		t.Fatal("ConfigWrite mapping failed")
	}
}

func TestTransactionEncodeValidation(t *testing.T) {
	if _, err := (Transaction{Kind: Write, Addr: 0, Data: nil}).encode(); err == nil {
		t.Fatal("empty transaction accepted")
	}
	big := Transaction{Kind: Write, Addr: 0, Data: make([]phit.Word, 0x8000)}
	if _, err := big.encode(); err == nil {
		t.Fatal("oversized transaction accepted")
	}
}

// platform builds a 2x2 daelite platform with one connection and the bus
// stack on both ends.
func platform(t *testing.T) (*core.Platform, *Initiator, *TargetShell, *Memory, *core.Connection) {
	t.Helper()
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Open(core.ConnectionSpec{
		Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 1, 0), SlotsFwd: 2, SlotsRev: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 10000); err != nil {
		t.Fatal(err)
	}
	amap := NewAddressMap()
	amap.Map(0x1000_0000, c.SrcChannel)
	ini := NewInitiator(p.Sim, "ini", p.NI(c.Spec.Src), amap)
	mem := NewMemory()
	tgt := NewTargetShell(p.Sim, "tgt", p.NI(c.Spec.Dst), mem)
	tgt.WatchChannel(c.DstChannel)
	return p, ini, tgt, mem, c
}

func TestWriteOverNoC(t *testing.T) {
	p, ini, tgt, mem, _ := platform(t)
	data := []phit.Word{0xA1, 0xB2, 0xC3}
	if err := ini.Issue(Transaction{Kind: Write, Addr: 0x1000_0010, Data: data}); err != nil {
		t.Fatal(err)
	}
	p.Run(400)
	for i, w := range data {
		if got := mem.ReadWord(0x1000_0010 + uint32(4*i)); got != w {
			t.Fatalf("mem[%d] = %#x, want %#x", i, got, w)
		}
	}
	writes, reads := tgt.Stats()
	if writes != 1 || reads != 0 {
		t.Fatalf("stats: %d writes %d reads", writes, reads)
	}
}

func TestReadOverNoC(t *testing.T) {
	p, ini, _, mem, _ := platform(t)
	mem.WriteWord(0x1000_0020, 0x99)
	mem.WriteWord(0x1000_0024, 0x88)
	if err := ini.Issue(Transaction{Kind: Read, Addr: 0x1000_0020, Data: make([]phit.Word, 2)}); err != nil {
		t.Fatal(err)
	}
	p.Run(600)
	res, ok := ini.PopResult()
	if !ok {
		t.Fatal("no read result")
	}
	if len(res.Data) != 2 || res.Data[0] != 0x99 || res.Data[1] != 0x88 {
		t.Fatalf("read data = %v", res.Data)
	}
	if _, ok := ini.PopResult(); ok {
		t.Fatal("phantom result")
	}
}

func TestBackToBackTransactions(t *testing.T) {
	p, ini, _, mem, _ := platform(t)
	for i := 0; i < 5; i++ {
		if err := ini.Issue(Transaction{Kind: Write, Addr: 0x1000_0100 + uint32(16*i), Data: []phit.Word{phit.Word(i), phit.Word(i + 100)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ini.Issue(Transaction{Kind: Read, Addr: 0x1000_0100, Data: make([]phit.Word, 1)}); err != nil {
		t.Fatal(err)
	}
	p.Run(1500)
	for i := 0; i < 5; i++ {
		if got := mem.ReadWord(0x1000_0100 + uint32(16*i)); got != phit.Word(i) {
			t.Fatalf("write %d missing: %#x", i, got)
		}
	}
	res, ok := ini.PopResult()
	if !ok || res.Data[0] != 0 {
		t.Fatalf("read after writes = %v %v (ordering violated)", res, ok)
	}
}

func TestUnmappedAddressRejected(t *testing.T) {
	_, ini, _, _, _ := platform(t)
	if err := ini.Issue(Transaction{Kind: Write, Addr: 0xDEAD_0000, Data: []phit.Word{1}}); err == nil {
		t.Fatal("unmapped address accepted")
	}
}

func TestPendingWordsDrain(t *testing.T) {
	p, ini, _, _, c := platform(t)
	big := make([]phit.Word, 40) // larger than the NI send queue
	if err := ini.Issue(Transaction{Kind: Write, Addr: 0x1000_0000, Data: big}); err != nil {
		t.Fatal(err)
	}
	if ini.PendingWords(c.SrcChannel) == 0 {
		t.Fatal("nothing pending after large issue")
	}
	p.Run(2000)
	if got := ini.PendingWords(c.SrcChannel); got != 0 {
		t.Fatalf("pending words stuck: %d", got)
	}
}
