// Package ni implements the daelite network interface (Fig. 5 of the
// paper). The NI owns the end-to-end connection machinery the routers are
// oblivious to: per-channel send and receive queues, the TDM slot table
// governing both packet departures and arrivals, credit-based end-to-end
// flow control carried on dedicated sideband wires alongside the data of
// the opposite-direction channel, connection state flags, and a
// configuration submodule that updates all of this through the broadcast
// configuration tree.
//
// A channel is the local endpoint of one direction of a connection: at the
// same local index an NI keeps the send queue and credit counter for its
// outgoing direction, plus the receive queue and delivered-word counter
// for the incoming direction. Credits for the incoming direction ride on
// the TX slots of the same local channel, and credits arriving on RX slots
// replenish the counter of the same local channel, which is exactly the
// pairing the paper describes ("credits for one direction are sent on
// separate bit-lines alongside data in the opposite direction").
package ni

import (
	"fmt"

	"daelite/internal/cfgproto"
	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/slots"
)

// Params holds the static hardware parameters of an NI.
type Params struct {
	// Wheel is the slot-table size.
	Wheel int
	// SlotWords is the slot length in words (2 in daelite).
	SlotWords int
	// NumChannels is the number of channel endpoints.
	NumChannels int
	// SendQueueDepth and RecvQueueDepth are per-channel queue
	// capacities in words. RecvQueueDepth bounds the credit counter and
	// must fit the 6-bit credit transfer (<= 63).
	SendQueueDepth int
	RecvQueueDepth int
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Wheel <= 0 || p.Wheel > slots.MaxTableSize {
		return fmt.Errorf("ni: wheel %d out of range", p.Wheel)
	}
	if p.SlotWords <= 0 {
		return fmt.Errorf("ni: slot words %d out of range", p.SlotWords)
	}
	if p.NumChannels <= 0 || p.NumChannels > cfgproto.MaxNIChannel+1 {
		return fmt.Errorf("ni: %d channels out of range 1..%d", p.NumChannels, cfgproto.MaxNIChannel+1)
	}
	if p.SendQueueDepth <= 0 || p.RecvQueueDepth <= 0 {
		return fmt.Errorf("ni: queue depths must be positive")
	}
	if p.RecvQueueDepth > phit.MaxCreditValue {
		return fmt.Errorf("ni: recv queue depth %d exceeds max credit value %d", p.RecvQueueDepth, phit.MaxCreditValue)
	}
	return nil
}

// Delivery is one word handed to the IP side, with simulation provenance.
type Delivery struct {
	Word  phit.Word
	Tag   phit.Tag
	Cycle uint64 // cycle the word entered the receive queue
}

// channel is the per-channel state. IP-side mutations (Send, Recv) are
// buffered in pending fields and applied at Commit, so that the NI's Eval
// always observes last cycle's settled queues regardless of component
// evaluation order.
type channel struct {
	flags uint8

	sendQ    []queuedWord
	pendSend []queuedWord
	recvQ    []Delivery
	// recvCursor counts words the IP consumed this cycle; the head of
	// recvQ is trimmed at Commit.
	recvCursor int

	// credit is the source-side counter: free words at the remote
	// receive queue. Initialized by configuration at set-up.
	credit int
	// delivered is the destination-side counter: words handed to the IP
	// that have not yet been returned to the remote source as credits.
	delivered     int
	pendDelivered int

	// The 6-bit credit value crosses a slot 3 bits per word.
	txCreditLatch uint8 // value being transmitted this slot
	rxCreditAccum uint8 // bits collected so far this slot

	seq uint64 // next sequence number for injected words

	// rxWords counts every word that entered the receive queue over the
	// channel's lifetime — the monotonic progress signal health
	// monitoring compares against the remote send queue's occupancy.
	rxWords uint64
	// txWords counts every word injected on the channel, the matching
	// source-side progress signal.
	txWords uint64
	// creditStall counts TX slots in which the channel had a queued word
	// but zero credit — the cycles end-to-end flow control held the
	// reserved bandwidth idle. A growing stall count with a healthy
	// network means the consumer is slow; with a dead reverse path it is
	// the first symptom of the failure.
	creditStall uint64
}

type queuedWord struct {
	word phit.Word
	tag  phit.Tag
}

// NI is one daelite network interface instance.
type NI struct {
	name   string
	id     int
	params Params

	inWire  *sim.Reg[phit.Flit] // from router (owned by router)
	inReg   *sim.Reg[phit.Flit] // first buffering stage
	outWire *sim.Reg[phit.Flit] // to router (owned by NI)

	table    *slots.NITable
	channels []*channel
	dec      *cfgproto.Decoder

	// Pending queue mutations applied at Commit so that IP-side reads
	// within the same cycle observe pre-edge state.
	pendingPush []pendingDelivery
	pendingPop  []int // channels whose send queue head was consumed

	// Configuration tree node state (NIs are leaves of the tree but the
	// plumbing is generic).
	cfgIn     *sim.Reg[phit.ConfigWord]
	cfgInReg  *sim.Reg[phit.ConfigWord]
	cfgOuts   []*sim.Reg[phit.ConfigWord]
	respIns   []*sim.Reg[phit.Response]
	respMerge *sim.Reg[phit.Response]
	respOut   *sim.Reg[phit.Response]

	// busShell accumulates RegBus writes for the adjacent bus's
	// configuration port (deserialized into wide words by the shell).
	busShell BusConfigPort
	busAccum uint32

	// Statistics.
	injected  uint64
	delivered uint64
	dropped   uint64
	rejected  uint64
	// curCycle tracks the last evaluated cycle so that IP-side Send
	// calls can stamp submission times.
	curCycle uint64
}

// pendingDelivery queues a word for a receive queue until Commit.
type pendingDelivery struct {
	ch int
	d  Delivery
}

// BusConfigPort receives deserialized configuration writes for the bus
// adjacent to this NI.
type BusConfigPort interface {
	ConfigWrite(value uint32)
}

// New creates an NI, registers it with s, and returns it.
func New(s *sim.Simulator, name string, id int, params Params) (*NI, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := &NI{
		name:      name,
		id:        id,
		params:    params,
		inReg:     sim.NewReg(s, phit.Idle()),
		outWire:   sim.NewReg(s, phit.Idle()),
		table:     slots.NewNITable(params.Wheel),
		cfgInReg:  sim.NewReg(s, phit.ConfigWord{}),
		respMerge: sim.NewReg(s, phit.Response{}),
		respOut:   sim.NewReg(s, phit.Response{}),
	}
	n.channels = make([]*channel, params.NumChannels)
	for i := range n.channels {
		n.channels[i] = &channel{}
	}
	n.dec = cfgproto.NewNIDecoder(id, params.Wheel, (*niSink)(n))
	s.Add(n)
	return n, nil
}

// Name implements sim.Component.
func (n *NI) Name() string { return n.name }

// ID returns the configuration element ID.
func (n *NI) ID() int { return n.id }

// ConnectInput attaches the wire arriving from the router.
func (n *NI) ConnectInput(wire *sim.Reg[phit.Flit]) { n.inWire = wire }

// OutputWire returns the wire this NI drives toward its router.
func (n *NI) OutputWire() *sim.Reg[phit.Flit] { return n.outWire }

// ConnectConfigIn attaches the forward configuration wire from the tree
// parent.
func (n *NI) ConnectConfigIn(wire *sim.Reg[phit.ConfigWord]) { n.cfgIn = wire }

// AddConfigChild allocates a forward wire toward a tree child.
func (n *NI) AddConfigChild(s *sim.Simulator) *sim.Reg[phit.ConfigWord] {
	w := sim.NewReg(s, phit.ConfigWord{})
	n.cfgOuts = append(n.cfgOuts, w)
	return w
}

// AddResponseChild attaches a child's reverse wire.
func (n *NI) AddResponseChild(wire *sim.Reg[phit.Response]) {
	n.respIns = append(n.respIns, wire)
}

// ResponseWire returns the reverse wire toward the tree parent.
func (n *NI) ResponseWire() *sim.Reg[phit.Response] { return n.respOut }

// SetBusConfigPort attaches the adjacent bus's configuration port.
func (n *NI) SetBusConfigPort(p BusConfigPort) { n.busShell = p }

// Table exposes the NI slot table for tests and probes.
func (n *NI) Table() *slots.NITable { return n.table }

// --- IP-side API (called from other components' Eval; effects are
// two-phase safe: pushes are visible next cycle, reads see settled state).

// CanSend reports whether channel ch can accept another word from the IP.
func (n *NI) CanSend(ch int) bool {
	c := n.channels[ch]
	return len(c.sendQ)+len(c.pendSend) < n.params.SendQueueDepth
}

// Send enqueues one word for transmission on channel ch. It returns false
// if the queue is full or the channel is not open. The word becomes
// eligible for injection on the next cycle (two-phase safety).
func (n *NI) Send(ch int, w phit.Word) bool {
	c := n.channels[ch]
	if c.flags&cfgproto.FlagOpen == 0 || len(c.sendQ)+len(c.pendSend) >= n.params.SendQueueDepth {
		n.rejected++
		return false
	}
	tag := phit.Tag{Channel: n.id<<8 | ch, Seq: c.seq, SubmitCycle: n.curCycle}
	c.seq++
	c.pendSend = append(c.pendSend, queuedWord{word: w, tag: tag})
	return true
}

// RecvLen returns the number of words available to the IP on channel ch.
func (n *NI) RecvLen(ch int) int {
	c := n.channels[ch]
	return len(c.recvQ) - c.recvCursor
}

// Recv pops one delivered word from channel ch, returning ok=false when
// the queue is empty. Popping frees buffer space and therefore schedules a
// credit to be returned to the remote source.
func (n *NI) Recv(ch int) (Delivery, bool) {
	c := n.channels[ch]
	if c.recvCursor >= len(c.recvQ) {
		return Delivery{}, false
	}
	d := c.recvQ[c.recvCursor]
	c.recvCursor++
	c.pendDelivered++
	return d, true
}

// SendQueueLen returns the occupancy of channel ch's send queue.
func (n *NI) SendQueueLen(ch int) int {
	c := n.channels[ch]
	return len(c.sendQ) + len(c.pendSend)
}

// Credit returns the source-side credit counter of channel ch.
func (n *NI) Credit(ch int) int { return n.channels[ch].credit }

// RxWords returns the lifetime count of words received into channel ch's
// queue (delivered to the IP or still waiting). Health monitors use it as
// the destination-side progress signal.
func (n *NI) RxWords(ch int) uint64 { return n.channels[ch].rxWords }

// TxWords returns the lifetime count of words injected on channel ch.
func (n *NI) TxWords(ch int) uint64 { return n.channels[ch].txWords }

// DeliveredCredits returns the destination-side unreturned-delivery
// counter of channel ch: words handed to the IP whose credits have not
// yet been latched for return to the remote source. Together with the
// source credit counter, the words in flight and the receive queue it
// completes the end-to-end credit conservation law that the conformance
// checker verifies online.
func (n *NI) DeliveredCredits(ch int) int { return n.channels[ch].delivered }

// CreditStallCycles returns how many TX slots channel ch spent with a
// queued word but no credit — reserved bandwidth held idle by end-to-end
// flow control.
func (n *NI) CreditStallCycles(ch int) uint64 { return n.channels[ch].creditStall }

// Flags returns the state flags of channel ch.
func (n *NI) Flags(ch int) uint8 { return n.channels[ch].flags }

// Rejected returns the number of Send calls refused because the channel
// was not open or its send queue was full — the IP-side injection
// back-pressure counter.
func (n *NI) Rejected() uint64 { return n.rejected }

// Stats returns the total words injected into and delivered from the
// network by this NI.
func (n *NI) Stats() (injected, delivered uint64) { return n.injected, n.delivered }

// Dropped returns words discarded at full receive queues. Zero for
// correctly flow-controlled channels; non-zero only when a multicast
// destination fails to consume at line rate (the failure mode the paper
// warns about).
func (n *NI) Dropped() uint64 { return n.dropped }

// Eval implements sim.Component.
func (n *NI) Eval(cycle uint64) {
	n.curCycle = cycle
	// Stage 1: latch the input wire.
	var inFlit phit.Flit
	if n.inWire != nil {
		inFlit = n.inWire.Get()
	}
	n.inReg.Set(inFlit)

	// The slot/word position of the value our registers present next
	// cycle.
	c1 := cycle + 1
	slot := slots.SlotOfCycle(c1, n.params.SlotWords, n.params.Wheel)
	wordIdx := int(c1 % uint64(n.params.SlotWords))
	entry := n.table.Entry(slot)

	// Transmit path.
	out := phit.Idle()
	if entry.TX != slots.NoChannel && entry.TX < len(n.channels) {
		ch := n.channels[entry.TX]
		if ch.flags&cfgproto.FlagOpen != 0 {
			// Credits for the opposite direction of this
			// connection ride in every slot of the channel,
			// 3 bits per word, high bits first: a slot of S
			// words transfers 3*S credit bits (6 with daelite's
			// 2-word slots, matching the paper's 6-bit counter).
			if wordIdx == 0 {
				max := 1<<(phit.CreditWires*n.params.SlotWords) - 1
				if max > phit.MaxCreditValue {
					max = phit.MaxCreditValue
				}
				v := ch.delivered
				if v > max {
					v = max
				}
				ch.txCreditLatch = uint8(v)
				ch.delivered -= v
			}
			shift := uint(phit.CreditWires * (n.params.SlotWords - 1 - wordIdx))
			out.Credit = (ch.txCreditLatch >> shift) & (1<<phit.CreditWires - 1)
			out.CreditValid = true

			// Payload: send if a word is queued and, unless
			// multicast, a credit is available.
			if len(ch.sendQ) > 0 && (ch.flags&cfgproto.FlagMulticast != 0 || ch.credit > 0) {
				qw := ch.sendQ[0]
				n.pendingPop = append(n.pendingPop, entry.TX)
				if ch.flags&cfgproto.FlagMulticast == 0 {
					ch.credit--
				}
				out.Valid = true
				out.Data = qw.word
				out.Tag = qw.tag
				out.Tag.InjectCycle = c1
				n.injected++
				ch.txWords++
			} else if len(ch.sendQ) > 0 {
				ch.creditStall++
			}
		}
	}
	n.outWire.Set(out)

	// Receive path: the second buffering stage accepts the input
	// register's value during the slot after it appeared on the link.
	in := n.inReg.Get()
	if entry.RX != slots.NoChannel && entry.RX < len(n.channels) {
		ch := n.channels[entry.RX]
		if in.CreditValid {
			ch.rxCreditAccum = ch.rxCreditAccum<<phit.CreditWires | in.Credit&(1<<phit.CreditWires-1)
			if wordIdx == n.params.SlotWords-1 {
				ch.credit += int(ch.rxCreditAccum)
				ch.rxCreditAccum = 0
			}
		}
		if in.Valid {
			if len(ch.recvQ)+n.pendingFor(entry.RX) < n.params.RecvQueueDepth {
				n.pendingPush = append(n.pendingPush, pendingDelivery{
					ch: entry.RX,
					d:  Delivery{Word: in.Data, Tag: in.Tag, Cycle: c1},
				})
				n.delivered++
				ch.rxWords++
			} else {
				n.dropped++
			}
			// A full queue drops the word; with correct credit
			// configuration this cannot happen for flow-controlled
			// channels, and tests assert it does not.
		}
	}

	// Configuration tree node.
	var cfgWord phit.ConfigWord
	if n.cfgIn != nil {
		cfgWord = n.cfgIn.Get()
	}
	n.cfgInReg.Set(cfgWord)
	for _, outw := range n.cfgOuts {
		outw.Set(n.cfgInReg.Get())
	}
	localResp := n.dec.Feed(n.cfgInReg.Get())
	merged := localResp
	for _, inw := range n.respIns {
		merged = phit.Merge(merged, inw.Get())
	}
	n.respMerge.Set(merged)
	n.respOut.Set(n.respMerge.Get())
}

func (n *NI) pendingFor(ch int) int {
	cnt := 0
	for _, p := range n.pendingPush {
		if p.ch == ch {
			cnt++
		}
	}
	return cnt
}

// Commit implements sim.Component: apply queue mutations decided in Eval
// (network-side pops and pushes) and by the IP-side API during other
// components' Eval (pending sends, consumed deliveries).
func (n *NI) Commit() {
	for _, ch := range n.pendingPop {
		c := n.channels[ch]
		if len(c.sendQ) > 0 {
			c.sendQ = c.sendQ[1:]
		}
	}
	n.pendingPop = n.pendingPop[:0]
	for _, p := range n.pendingPush {
		c := n.channels[p.ch]
		c.recvQ = append(c.recvQ, p.d)
	}
	n.pendingPush = n.pendingPush[:0]
	for _, c := range n.channels {
		if len(c.pendSend) > 0 {
			c.sendQ = append(c.sendQ, c.pendSend...)
			c.pendSend = c.pendSend[:0]
		}
		if c.recvCursor > 0 {
			c.recvQ = c.recvQ[c.recvCursor:]
			c.recvCursor = 0
		}
		if c.pendDelivered > 0 {
			c.delivered += c.pendDelivered
			c.pendDelivered = 0
		}
	}
}

// Quiescence implements sim.Quiescer. The NI is quiet when every
// channel's queues and credit-return machinery are drained — no queued
// or pending words, no deliveries awaiting credit return, no credit
// value mid-flight on the sideband — and its wires carry only inert
// flits, its configuration-tree stages are empty, and its decoder is
// between transactions. In that state the NI's only output is the
// hyper-period-periodic zero-credit carrier on its open TX slots, so
// every counter (injected, delivered, txWords, rxWords, creditStall)
// is frozen.
func (n *NI) Quiescence(now uint64) sim.Quiescence {
	for _, c := range n.channels {
		if len(c.sendQ) > 0 || len(c.pendSend) > 0 || len(c.recvQ) > 0 ||
			c.recvCursor != 0 || c.delivered != 0 || c.pendDelivered != 0 ||
			c.txCreditLatch != 0 || c.rxCreditAccum != 0 {
			return sim.Quiescence{}
		}
	}
	if len(n.pendingPush) > 0 || len(n.pendingPop) > 0 {
		return sim.Quiescence{}
	}
	if !n.inReg.Get().Inert() || !n.outWire.Get().Inert() {
		return sim.Quiescence{}
	}
	if n.cfgInReg.Get() != (phit.ConfigWord{}) {
		return sim.Quiescence{}
	}
	for _, out := range n.cfgOuts {
		if out.Get() != (phit.ConfigWord{}) {
			return sim.Quiescence{}
		}
	}
	if n.respMerge.Get() != (phit.Response{}) || n.respOut.Get() != (phit.Response{}) {
		return sim.Quiescence{}
	}
	if n.dec.Busy() {
		return sim.Quiescence{}
	}
	return sim.Quiescence{Quiet: true}
}

// OnFastForward implements sim.FastForwarder: resync the submission
// clock so IP-side Send calls issued after a skip stamp the correct
// cycle. Eval(cycle) sets curCycle = cycle; after a skip to `to`, the
// next real Eval will run with cycle = to, so mirror the state Eval
// would have left at to-1.
func (n *NI) OnFastForward(from, to uint64) {
	n.curCycle = to - 1
}

// niSink adapts the NI to cfgproto.Sink.
type niSink NI

func (ns *niSink) ApplySlots(mask slots.Mask, spec cfgproto.PortSpec) {
	n := (*NI)(ns)
	if !spec.ForNI || spec.Channel >= len(n.channels) {
		return
	}
	channel := spec.Channel
	if !spec.Enable {
		channel = slots.NoChannel
	}
	if spec.Send {
		_ = n.table.SetSend(mask, channel)
	} else {
		_ = n.table.SetReceive(mask, channel)
	}
}

func (ns *niSink) WriteReg(reg, value uint8) {
	n := (*NI)(ns)
	ch := cfgproto.RegChannel(reg)
	switch cfgproto.RegClass(reg) {
	case cfgproto.RegFlags:
		if ch < len(n.channels) {
			n.channels[ch].flags = value
		}
	case cfgproto.RegCredit:
		if ch < len(n.channels) {
			n.channels[ch].credit = int(value)
		}
	case cfgproto.RegDelivered:
		if ch < len(n.channels) {
			n.channels[ch].delivered = int(value)
		}
	case cfgproto.RegBus:
		if n.busShell != nil {
			n.busDeser(ch, value)
		}
	}
}

// busDeser deserializes successive 7-bit RegBus writes into 28-bit wide
// words for the adjacent bus configuration port: channel field 0..3 gives
// the symbol position, position 3 flushes.
func (n *NI) busDeser(pos int, value uint8) {
	n.busAccum = n.busAccum<<7 | uint32(value&0x7F)
	if pos == 3 {
		n.busShell.ConfigWrite(n.busAccum)
		n.busAccum = 0
	}
}

func (ns *niSink) ReadReg(reg uint8) (uint8, bool) {
	n := (*NI)(ns)
	ch := cfgproto.RegChannel(reg)
	if ch >= len(n.channels) {
		return 0, false
	}
	switch cfgproto.RegClass(reg) {
	case cfgproto.RegFlags:
		return n.channels[ch].flags & 0x7F, true
	case cfgproto.RegCredit:
		v := n.channels[ch].credit
		if v > 0x7F {
			v = 0x7F
		}
		return uint8(v), true
	case cfgproto.RegDelivered:
		v := n.channels[ch].delivered
		if v > 0x7F {
			v = 0x7F
		}
		return uint8(v), true
	default:
		return 0, false
	}
}
