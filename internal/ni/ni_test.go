package ni

import (
	"testing"

	"daelite/internal/cfgproto"
	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/slots"
)

func params() Params {
	return Params{Wheel: 8, SlotWords: 2, NumChannels: 4, SendQueueDepth: 8, RecvQueueDepth: 16}
}

// pair wires two NIs directly together (a single-link "network"): A's
// output is B's input and vice versa. A word injected at slot s arrives
// in the peer's receive table slot s+1.
func pair(t *testing.T, p Params) (*sim.Simulator, *NI, *NI) {
	t.Helper()
	s := sim.New()
	a, err := New(s, "A", 1, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(s, "B", 2, p)
	if err != nil {
		t.Fatal(err)
	}
	a.ConnectInput(b.OutputWire())
	b.ConnectInput(a.OutputWire())
	return s, a, b
}

// arm configures a bidirectional channel 0 between a and b. A hop is two
// cycles, so the receive-table slot trails the injection slot by
// 2/SlotWords positions — one with daelite's 2-word slots (the paper's
// design point, where the config protocol's rotate-by-one law holds), two
// with 1-word slots.
func arm(t *testing.T, a, b *NI, txA, txB slots.Mask, credit int, multicast bool) {
	t.Helper()
	rot := 2 / a.params.SlotWords
	if err := a.Table().SetSend(txA, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Table().SetReceive(txA.RotateUp(rot), 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Table().SetSend(txB, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Table().SetReceive(txB.RotateUp(rot), 0); err != nil {
		t.Fatal(err)
	}
	flags := cfgproto.FlagOpen
	if multicast {
		flags |= cfgproto.FlagMulticast
	}
	as := (*niSink)(a)
	bs := (*niSink)(b)
	as.WriteReg(cfgproto.RegSelect(cfgproto.RegFlags, 0), flags)
	bs.WriteReg(cfgproto.RegSelect(cfgproto.RegFlags, 0), flags)
	as.WriteReg(cfgproto.RegSelect(cfgproto.RegCredit, 0), uint8(credit))
	bs.WriteReg(cfgproto.RegSelect(cfgproto.RegCredit, 0), uint8(credit))
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Wheel: 0, SlotWords: 2, NumChannels: 4, SendQueueDepth: 8, RecvQueueDepth: 16},
		{Wheel: 8, SlotWords: 0, NumChannels: 4, SendQueueDepth: 8, RecvQueueDepth: 16},
		{Wheel: 8, SlotWords: 2, NumChannels: 0, SendQueueDepth: 8, RecvQueueDepth: 16},
		{Wheel: 8, SlotWords: 2, NumChannels: 99, SendQueueDepth: 8, RecvQueueDepth: 16},
		{Wheel: 8, SlotWords: 2, NumChannels: 4, SendQueueDepth: 0, RecvQueueDepth: 16},
		{Wheel: 8, SlotWords: 2, NumChannels: 4, SendQueueDepth: 8, RecvQueueDepth: 64},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	if err := params().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSendRequiresOpenChannel(t *testing.T) {
	s, a, _ := pair(t, params())
	if a.Send(0, 1) {
		t.Fatal("closed channel accepted a word")
	}
	(*niSink)(a).WriteReg(cfgproto.RegSelect(cfgproto.RegFlags, 0), cfgproto.FlagOpen)
	if !a.Send(0, 1) {
		t.Fatal("open channel rejected a word")
	}
	_ = s
}

func TestSendQueueBound(t *testing.T) {
	p := params()
	_, a, _ := pair(t, p)
	(*niSink)(a).WriteReg(cfgproto.RegSelect(cfgproto.RegFlags, 0), cfgproto.FlagOpen)
	for i := 0; i < p.SendQueueDepth; i++ {
		if !a.Send(0, phit.Word(i)) {
			t.Fatalf("send %d rejected below depth", i)
		}
	}
	if a.Send(0, 99) {
		t.Fatal("send accepted beyond queue depth")
	}
	if a.CanSend(0) {
		t.Fatal("CanSend true at full queue")
	}
	if got := a.SendQueueLen(0); got != p.SendQueueDepth {
		t.Fatalf("queue len = %d", got)
	}
}

func TestEndToEndDeliveryAndOrder(t *testing.T) {
	s, a, b := pair(t, params())
	arm(t, a, b, slots.MaskOf(8, 1, 5), slots.MaskOf(8, 3), 16, false)
	for i := 0; i < 6; i++ {
		if !a.Send(0, phit.Word(0x40+i)) {
			t.Fatalf("send %d rejected", i)
		}
	}
	s.Run(100)
	if got := b.RecvLen(0); got != 6 {
		t.Fatalf("delivered %d of 6", got)
	}
	for i := 0; i < 6; i++ {
		d, ok := b.Recv(0)
		if !ok || d.Word != phit.Word(0x40+i) {
			t.Fatalf("word %d = %v %v", i, d.Word, ok)
		}
		if d.Tag.Seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", d.Tag.Seq, i)
		}
	}
	if _, ok := b.Recv(0); ok {
		t.Fatal("phantom delivery")
	}
}

// TestSlotAlignment pins the +1 law on a single link: injection at slot s
// is accepted by the peer's receive entry at slot s+1 and only there.
func TestSlotAlignment(t *testing.T) {
	p := params()
	s := sim.New()
	a, _ := New(s, "A", 1, p)
	b, _ := New(s, "B", 2, p)
	b.ConnectInput(a.OutputWire())
	_ = a.Table().SetSend(slots.MaskOf(8, 2), 0)
	// Deliberately misalign the receive entry: nothing may arrive.
	_ = b.Table().SetReceive(slots.MaskOf(8, 2), 0)
	(*niSink)(a).WriteReg(cfgproto.RegSelect(cfgproto.RegFlags, 0), cfgproto.FlagOpen)
	(*niSink)(a).WriteReg(cfgproto.RegSelect(cfgproto.RegCredit, 0), 8)
	(*niSink)(b).WriteReg(cfgproto.RegSelect(cfgproto.RegFlags, 0), cfgproto.FlagOpen)
	a.Send(0, 0xEE)
	s.Run(64)
	if b.RecvLen(0) != 0 {
		t.Fatal("misaligned receive entry accepted data")
	}
	// Fix the alignment: slot 3 = injection slot 2 + 1.
	_ = b.Table().SetReceive(slots.MaskOf(8, 2), slots.NoChannel)
	_ = b.Table().SetReceive(slots.MaskOf(8, 3), 0)
	a.Send(0, 0xEF)
	s.Run(64)
	if b.RecvLen(0) != 1 {
		t.Fatal("aligned receive entry missed data")
	}
}

func TestCreditPiggybackRoundTrip(t *testing.T) {
	p := params()
	p.RecvQueueDepth = 4
	s, a, b := pair(t, p)
	arm(t, a, b, slots.MaskOf(8, 1), slots.MaskOf(8, 4), 4, false)
	// Fill the destination queue: credits exhausted at 4 in flight.
	for i := 0; i < 8; i++ {
		a.Send(0, phit.Word(i))
	}
	s.Run(200)
	if got := b.RecvLen(0); got != 4 {
		t.Fatalf("delivered %d, want 4 (credit bound)", got)
	}
	if a.Credit(0) != 0 {
		t.Fatalf("source credit = %d, want 0", a.Credit(0))
	}
	// Consume two words; two credits flow back on B's TX slots; two
	// more words arrive.
	b.Recv(0)
	b.Recv(0)
	s.Run(200)
	if got := b.RecvLen(0); got != 4 {
		t.Fatalf("after credit return: delivered %d in queue, want 4", got)
	}
	injected, _ := a.Stats()
	if injected != 6 {
		t.Fatalf("injected = %d, want 6", injected)
	}
}

func TestMulticastFlagBypassesCredits(t *testing.T) {
	p := params()
	s, a, b := pair(t, p)
	// Credit 0, multicast flag set: words must still flow.
	arm(t, a, b, slots.MaskOf(8, 2), slots.MaskOf(8, 6), 0, true)
	for i := 0; i < 5; i++ {
		a.Send(0, phit.Word(i))
	}
	s.Run(120)
	if got := b.RecvLen(0); got != 5 {
		t.Fatalf("multicast delivered %d of 5", got)
	}
}

func TestRecvQueueOverflowDropsOnlyWithoutFlowControl(t *testing.T) {
	p := params()
	p.RecvQueueDepth = 2
	s, a, b := pair(t, p)
	arm(t, a, b, slots.MaskOf(8, 1), slots.MaskOf(8, 5), 0, true) // multicast: no credits
	for i := 0; i < 6; i++ {
		a.Send(0, phit.Word(i))
	}
	s.Run(200)
	// Without flow control and a consumer, the queue caps at 2 and the
	// surplus is dropped — the behaviour the paper warns about for
	// multicast destinations that cannot keep up.
	if got := b.RecvLen(0); got != 2 {
		t.Fatalf("queue holds %d, want 2", got)
	}
	injected, _ := a.Stats()
	if injected != 6 {
		t.Fatalf("source stalled: injected %d", injected)
	}
}

func TestConfigReadbackRegisters(t *testing.T) {
	_, a, _ := pair(t, params())
	sink := (*niSink)(a)
	sink.WriteReg(cfgproto.RegSelect(cfgproto.RegFlags, 1), cfgproto.FlagOpen)
	sink.WriteReg(cfgproto.RegSelect(cfgproto.RegCredit, 1), 13)
	sink.WriteReg(cfgproto.RegSelect(cfgproto.RegDelivered, 1), 5)
	if v, ok := sink.ReadReg(cfgproto.RegSelect(cfgproto.RegFlags, 1)); !ok || v != cfgproto.FlagOpen {
		t.Fatalf("flags readback = %d %v", v, ok)
	}
	if v, ok := sink.ReadReg(cfgproto.RegSelect(cfgproto.RegCredit, 1)); !ok || v != 13 {
		t.Fatalf("credit readback = %d %v", v, ok)
	}
	if v, ok := sink.ReadReg(cfgproto.RegSelect(cfgproto.RegDelivered, 1)); !ok || v != 5 {
		t.Fatalf("delivered readback = %d %v", v, ok)
	}
	// Out-of-range channel: silent.
	if _, ok := sink.ReadReg(cfgproto.RegSelect(cfgproto.RegCredit, 31)); ok {
		t.Fatal("out-of-range channel answered")
	}
}

// busRecorder captures deserialized bus configuration words.
type busRecorder struct{ words []uint32 }

func (b *busRecorder) ConfigWrite(v uint32) { b.words = append(b.words, v) }

func TestBusConfigDeserialization(t *testing.T) {
	_, a, _ := pair(t, params())
	rec := &busRecorder{}
	a.SetBusConfigPort(rec)
	sink := (*niSink)(a)
	// Four 7-bit writes assemble one 28-bit word; position 3 flushes.
	want := uint32(0x0ABCDEF)
	for i := 0; i < 4; i++ {
		shift := uint(7 * (3 - i))
		sink.WriteReg(cfgproto.RegSelect(cfgproto.RegBus, i), uint8(want>>shift&0x7F))
	}
	if len(rec.words) != 1 || rec.words[0] != want {
		t.Fatalf("bus config = %#x, want %#x", rec.words, want)
	}
}

func TestApplySlotsIgnoresMalformedSpecs(t *testing.T) {
	_, a, _ := pair(t, params())
	sink := (*niSink)(a)
	// Router-layout spec addressed to an NI: ignored.
	sink.ApplySlots(slots.MaskOf(8, 1), cfgproto.RouterSpec(1, 1))
	// Out-of-range channel: ignored.
	sink.ApplySlots(slots.MaskOf(8, 1), cfgproto.NISpec(true, true, 20))
	if !a.Table().OccupiedMask().Empty() {
		t.Fatal("malformed spec modified the table")
	}
}

// TestOneWordSlots exercises the paper's "could be decreased to a single
// word" option: with 1-word slots credits transfer 3 bits per slot and
// everything still flows with flow control intact.
func TestOneWordSlots(t *testing.T) {
	p := params()
	p.SlotWords = 1
	p.RecvQueueDepth = 6
	s, a, b := pair(t, p)
	arm(t, a, b, slots.MaskOf(8, 1, 4), slots.MaskOf(8, 6), 6, false)
	sent := 0
	for sent < 6 {
		if a.Send(0, phit.Word(sent)) {
			sent++
		} else {
			s.Run(8)
		}
	}
	s.Run(100)
	if got := b.RecvLen(0); got != 6 {
		t.Fatalf("credit bound violated with 1-word slots: %d", got)
	}
	if a.Credit(0) != 0 {
		t.Fatalf("credit = %d, want 0", a.Credit(0))
	}
	// Drain and confirm the remaining words flow in order once credits
	// return (3 bits per 1-word slot).
	seen := 0
	for seen < 12 {
		if sent < 12 && a.Send(0, phit.Word(sent)) {
			sent++
		}
		d, ok := b.Recv(0)
		if ok {
			if d.Word != phit.Word(seen) {
				t.Fatalf("word %d = %v", seen, d.Word)
			}
			seen++
			continue
		}
		s.Run(20)
		if s.Cycle() > 5000 {
			t.Fatalf("stalled at %d of 12 (sent %d)", seen, sent)
		}
	}
}

func TestAccessors(t *testing.T) {
	_, a, _ := pair(t, params())
	if a.Name() != "A" || a.ID() != 1 {
		t.Fatal("accessors wrong")
	}
	if a.Flags(0) != 0 {
		t.Fatal("fresh flags not zero")
	}
}

func TestDroppedCounter(t *testing.T) {
	p := params()
	p.RecvQueueDepth = 2
	s, a, b := pair(t, p)
	arm(t, a, b, slots.MaskOf(8, 1), slots.MaskOf(8, 5), 0, true) // multicast: no credits
	for i := 0; i < 6; i++ {
		a.Send(0, phit.Word(i))
	}
	s.Run(200)
	if got := b.Dropped(); got != 4 {
		t.Fatalf("dropped = %d, want 4 (6 sent, 2-word queue, no consumer)", got)
	}
	// Flow-controlled channels never drop.
	s2, c, d := pair(t, params())
	arm(t, c, d, slots.MaskOf(8, 2), slots.MaskOf(8, 6), 16, false)
	for i := 0; i < 10; i++ {
		c.Send(0, phit.Word(i))
	}
	s2.Run(400)
	if d.Dropped() != 0 {
		t.Fatalf("flow-controlled channel dropped %d", d.Dropped())
	}
}
