package cfgproto

import (
	"testing"

	"daelite/internal/slots"
)

// Table-driven boundary round-trips for the 7-bit wire format: the
// element-ID edge (126 is the last real ID, 127 is the reserved padding
// ID, 128 does not encode) and the slot-mask edges (wheels that exactly
// fill, underfill and overfill their 7-bit words, up to the 64-bit
// ceiling).

func TestElementIDBoundary(t *testing.T) {
	cases := []struct {
		name    string
		element int
		wantErr bool
	}{
		{"zero", 0, false},
		{"last real ID", PadElement - 1, false},
		{"pad element encodes", PadElement, false}, // burns a rotation, matches nothing
		{"first out of range", MaxElements, true},
		{"negative", -1, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Register-write path.
			words, err := WriteRegPacket([]RegWrite{{Element: c.element, Reg: RegSelect(RegCredit, 3), Value: 0x7F}})
			if c.wantErr {
				if err == nil {
					t.Fatalf("WriteRegPacket(element=%d) succeeded", c.element)
				}
			} else {
				if err != nil {
					t.Fatalf("WriteRegPacket(element=%d): %v", c.element, err)
				}
				if got := int(words[1].Bits); got != c.element {
					t.Fatalf("element word %d, want %d", got, c.element)
				}
			}

			// Path set-up path: same ID rules, checked independently.
			ps := PathSetup{
				Mask:  slots.MaskOf(8, 2),
				Pairs: []Pair{{Element: c.element, Spec: RouterSpec(1, 2)}},
			}
			_, err = ps.Words()
			if c.wantErr != (err != nil) {
				t.Fatalf("PathSetup.Words(element=%d) err=%v, wantErr=%v", c.element, err, c.wantErr)
			}

			// Register-read path.
			_, err = ReadRegPacket(c.element, RegSelect(RegFlags, 0))
			if c.wantErr != (err != nil) {
				t.Fatalf("ReadRegPacket(element=%d) err=%v, wantErr=%v", c.element, err, c.wantErr)
			}
		})
	}
}

func TestMaskEdgeValues(t *testing.T) {
	allOnes := func(wheel int) uint64 {
		if wheel == 64 {
			return ^uint64(0)
		}
		return (uint64(1) << uint(wheel)) - 1
	}
	// Wheels chosen to hit the word-packing edges: one word exactly (7),
	// one word plus one bit (8), two words exactly (14), the largest
	// partial top word (63) and the 64-bit ceiling.
	wheels := []int{7, 8, 14, 63, 64}
	for _, wheel := range wheels {
		shapes := []struct {
			name string
			bits uint64
		}{
			{"empty", 0},
			{"lsb only", 1},
			{"msb only", uint64(1) << uint(wheel-1)},
			{"all ones", allOnes(wheel)},
			{"alternating", 0xAAAAAAAAAAAAAAAA & allOnes(wheel)},
		}
		for _, s := range shapes {
			m := slots.Mask{Bits: s.bits, Size: wheel}
			words := EncodeMask(m)
			if len(words) != MaskWords(wheel) {
				t.Fatalf("wheel %d %s: %d words, want %d", wheel, s.name, len(words), MaskWords(wheel))
			}
			got, err := DecodeMask(words, wheel)
			if err != nil {
				t.Fatalf("wheel %d %s: decode: %v", wheel, s.name, err)
			}
			if got.Bits != m.Bits || got.Size != wheel {
				t.Fatalf("wheel %d %s: round trip %s, want %s", wheel, s.name, got, m)
			}
		}

		// A stream with bits beyond the wheel must be rejected (except at
		// the 64-bit ceiling, where every encodable bit is in range).
		if wheel < 64 {
			over := slots.Mask{Bits: allOnes(wheel), Size: wheel}
			words := EncodeMask(over)
			words[0].Bits |= 0x7F // drive every transmitted high-order bit
			if _, err := DecodeMask(words, wheel); err == nil &&
				MaskWords(wheel)*7 > wheel {
				t.Fatalf("wheel %d: out-of-range mask bits accepted", wheel)
			}
		}
	}
}

// TestWriteRegTripleRoundTrip walks a serialized multi-write packet and
// recovers every triple, with register select and value at their 7-bit
// maxima.
func TestWriteRegTripleRoundTrip(t *testing.T) {
	writes := []RegWrite{
		{Element: 0, Reg: 0, Value: 0},
		{Element: 63, Reg: RegSelect(RegCredit, MaxNIChannel), Value: 0x7F},
		{Element: PadElement - 1, Reg: RegSelect(RegBus, 0x1F), Value: 0x55},
	}
	words, err := WriteRegPacket(writes)
	if err != nil {
		t.Fatal(err)
	}
	op, count := ParseHeader(words[0])
	if op != OpWriteReg || count != len(writes) {
		t.Fatalf("header (%v, %d), want (%v, %d)", op, count, OpWriteReg, len(writes))
	}
	if len(words) != 1+3*len(writes) {
		t.Fatalf("%d words, want %d", len(words), 1+3*len(writes))
	}
	for i, w := range writes {
		e, r, v := words[1+3*i], words[2+3*i], words[3+3*i]
		if int(e.Bits) != w.Element || r.Bits != w.Reg || v.Bits != w.Value {
			t.Fatalf("triple %d: (%d, %#x, %#x), want (%d, %#x, %#x)",
				i, e.Bits, r.Bits, v.Bits, w.Element, w.Reg, w.Value)
		}
		if RegClass(r.Bits) != RegClass(w.Reg) || RegChannel(r.Bits) != RegChannel(w.Reg) {
			t.Fatalf("triple %d: register select fields did not survive", i)
		}
	}
}
