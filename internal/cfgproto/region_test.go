package cfgproto

import (
	"testing"

	"daelite/internal/phit"
	"daelite/internal/slots"
)

// TestRegionSelectRoundTrip drives the envelope through its boundary
// cases: region 0, the 1-word/2-word encoding boundary, and the last
// addressable region.
func TestRegionSelectRoundTrip(t *testing.T) {
	cases := []struct {
		name      string
		region    int
		wantWords int // ID words, excluding the header
	}{
		{"region-0", 0, 1},
		{"region-1", 1, 1},
		{"last-1-word", 127, 1},
		{"first-2-word", 128, 2},
		{"mid-2-word", 5000, 2},
		{"last-region", MaxRegions - 1, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sel, err := RegionSelect(tc.region)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(sel) - 1; got != tc.wantWords {
				t.Fatalf("region %d encoded in %d ID words, want %d", tc.region, got, tc.wantWords)
			}
			op, n := ParseHeader(sel[0])
			if op != OpRegion || n != tc.wantWords {
				t.Fatalf("header %v/%d, want region-select/%d", op, n, tc.wantWords)
			}
			region, consumed, err := ParseRegionSelect(sel)
			if err != nil {
				t.Fatal(err)
			}
			if region != tc.region || consumed != len(sel) {
				t.Fatalf("parsed (%d, %d), want (%d, %d)", region, consumed, tc.region, len(sel))
			}
		})
	}
	for _, bad := range []int{-1, MaxRegions} {
		if _, err := RegionSelect(bad); err == nil {
			t.Fatalf("RegionSelect(%d) accepted an out-of-range region", bad)
		}
	}
}

// TestEnvelopeRoundTripAtElementBoundary wraps path-setup packets
// addressing the edge of the region-local element-ID space (element 126,
// the last usable ID, and the reserved padding element 127) and checks
// the payload survives the envelope bit for bit, for the first and last
// region.
func TestEnvelopeRoundTripAtElementBoundary(t *testing.T) {
	const wheel = 8
	mask := slots.Mask{Bits: 0xA5, Size: wheel}
	for _, region := range []int{0, 127, 128, MaxRegions - 1} {
		for _, elem := range []int{0, 126, PadElement} {
			pkt := PathSetup{Mask: mask, Pairs: []Pair{
				{Element: elem, Spec: RouterSpec(1, 2)},
				{Element: PadElement, Spec: RouterSpec(0, 0)},
				{Element: 126, Spec: RouterSpec(3, 4)},
			}}
			words, err := pkt.Words()
			if err != nil {
				t.Fatal(err)
			}
			env, err := Envelope(region, words)
			if err != nil {
				t.Fatal(err)
			}
			gotRegion, payload, err := DecodeEnvelope(env)
			if err != nil {
				t.Fatalf("region %d elem %d: %v", region, elem, err)
			}
			if gotRegion != region {
				t.Fatalf("region %d decoded as %d", region, gotRegion)
			}
			if len(payload) != len(words) {
				t.Fatalf("payload length %d, want %d", len(payload), len(words))
			}
			for i := range words {
				if payload[i] != words[i] {
					t.Fatalf("region %d elem %d: payload word %d is %#x, want %#x",
						region, elem, i, payload[i].Bits, words[i].Bits)
				}
			}
			if op, err := PacketOp(env); err != nil || op != OpPathSetup {
				t.Fatalf("PacketOp(envelope) = %v, %v; want path-setup", op, err)
			}
		}
	}
}

// TestEnvelopeErrors covers the malformed-envelope paths.
func TestEnvelopeErrors(t *testing.T) {
	pkt := []phit.ConfigWord{Header(OpNop, 0)}
	sel, err := RegionSelect(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParseRegionSelect(nil); err == nil {
		t.Fatal("empty region select accepted")
	}
	if _, _, err := ParseRegionSelect(pkt); err == nil {
		t.Fatal("non-region header accepted as region select")
	}
	if _, _, err := ParseRegionSelect(sel[:1]); err == nil {
		t.Fatal("truncated region select accepted")
	}
	if _, _, err := ParseRegionSelect([]phit.ConfigWord{Header(OpRegion, 3), {}, {}, {}}); err == nil {
		t.Fatal("oversized region select accepted")
	}
	if _, _, err := DecodeEnvelope(sel); err == nil {
		t.Fatal("envelope with no payload accepted")
	}
	if _, err := Envelope(0, nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	nested, _ := Envelope(1, sel)
	if _, err := PacketOp(append(nested, pkt...)); err == nil {
		t.Fatal("nested region select accepted")
	}
}

// TestDecoderSkipsRegionSelect feeds a stream where two packets for
// different regions follow each other — the decoder must consume each
// region select without state damage and decode the enveloped packets
// normally: exactly the pairs addressed to the element's region-local ID
// apply, even across the region switch.
func TestDecoderSkipsRegionSelect(t *testing.T) {
	const wheel = 8
	sink := &recordSink{}
	dec := NewDecoder(5, wheel, sink)

	mask := slots.Mask{Bits: 0x0F, Size: wheel}
	mk := func(region, elem int) []phit.ConfigWord {
		pkt := PathSetup{Mask: mask, Pairs: []Pair{{Element: elem, Spec: RouterSpec(1, 2)}}}
		words, err := pkt.Words()
		if err != nil {
			t.Fatal(err)
		}
		env, err := Envelope(region, words)
		if err != nil {
			t.Fatal(err)
		}
		return env
	}

	var stream []phit.ConfigWord
	stream = append(stream, mk(0, 5)...)              // region 0, addressed to us
	stream = append(stream, mk(200, 5)...)            // 2-word region ID, also local ID 5
	stream = append(stream, mk(1, 7)...)              // someone else
	stream = append(stream, phit.ConfigWord{})        // idle gap
	stream = append(stream, Header(OpRegion, 2))      // stray envelope, then garbage IDs
	stream = append(stream, phit.NewConfigWord(0x05)) // would misparse as a header without the skip state
	stream = append(stream, phit.NewConfigWord(0x11))
	stream = append(stream, mk(3, 5)...)

	for _, w := range stream {
		dec.Feed(w)
	}
	if dec.Busy() {
		t.Fatal("decoder left mid-packet")
	}
	if got := len(sink.applies); got != 3 {
		t.Fatalf("element applied %d pair(s), want 3 (regions 0, 200 and 3)", got)
	}
}

// FuzzRegionEnvelope fuzzes the envelope codec: any byte string that
// parses as a region select must re-encode to the same region, and the
// decoder must never be left mid-packet by a well-formed enveloped
// packet built from the fuzzed region and element IDs.
func FuzzRegionEnvelope(f *testing.F) {
	// Seed corpus: the boundary cases of both ID spaces, plus a region
	// switch between consecutive packets.
	f.Add(uint16(0), uint8(0))
	f.Add(uint16(0), uint8(126))
	f.Add(uint16(0), uint8(PadElement))
	f.Add(uint16(127), uint8(126))
	f.Add(uint16(128), uint8(1))
	f.Add(uint16(MaxRegions-1), uint8(126))
	f.Fuzz(func(t *testing.T, regionRaw uint16, elemRaw uint8) {
		region := int(regionRaw) % MaxRegions
		elem := int(elemRaw) % MaxElements
		pkt := PathSetup{
			Mask:  slots.Mask{Bits: uint64(regionRaw) & 0xFF, Size: 8},
			Pairs: []Pair{{Element: elem, Spec: RouterSpec(int(elemRaw)%7, int(regionRaw)%7)}},
		}
		words, err := pkt.Words()
		if err != nil {
			t.Fatal(err)
		}
		env, err := Envelope(region, words)
		if err != nil {
			t.Fatal(err)
		}
		gotRegion, payload, err := DecodeEnvelope(env)
		if err != nil || gotRegion != region || len(payload) != len(words) {
			t.Fatalf("round trip: region %d -> %d, payload %d/%d words, err %v",
				region, gotRegion, len(payload), len(words), err)
		}
		// A region switch mid-stream: the same packet for region+1 mod
		// MaxRegions directly after; the decoder must stay in sync.
		env2, err := Envelope((region+1)%MaxRegions, words)
		if err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(elem%127, 8, &recordSink{})
		for _, w := range append(append([]phit.ConfigWord{}, env...), env2...) {
			dec.Feed(w)
		}
		if dec.Busy() {
			t.Fatal("decoder left mid-packet after a region switch")
		}
	})
}
