package cfgproto

import (
	"fmt"

	"daelite/internal/phit"
)

// Region-addressed envelopes break the 7-bit element-ID ceiling: a
// platform larger than 127 elements is partitioned into configuration
// regions, each with its own broadcast tree and a region-local element-ID
// space. A packet bound for one region is wrapped in a region select —
//
//	Header(OpRegion, n) | region-ID word ... (n words, base-128, MSB first)
//
// — followed by the ordinary packet. The envelope travels on the selected
// region's forward tree like any other words; elements skip it (see the
// decoder's region-skip state) and then decode the packet against their
// region-local IDs. Single-region platforms never emit envelopes, so the
// pre-region wire format is preserved bit for bit.

const (
	// MaxRegionWords is the largest region-ID word count encodable in a
	// region-select header; two base-128 words address 16384 regions,
	// over two million elements.
	MaxRegionWords = 2
	// MaxRegions is the number of addressable configuration regions.
	MaxRegions = 1 << (7 * MaxRegionWords)
)

// RegionSelectWords returns the number of ID words a region select for
// the given region carries (excluding its header word).
func RegionSelectWords(region int) int {
	if region < 128 {
		return 1
	}
	return 2
}

// RegionSelect builds the envelope prefix selecting a region.
func RegionSelect(region int) ([]phit.ConfigWord, error) {
	if region < 0 || region >= MaxRegions {
		return nil, fmt.Errorf("cfgproto: region %d out of range 0..%d", region, MaxRegions-1)
	}
	n := RegionSelectWords(region)
	words := make([]phit.ConfigWord, 0, n+1)
	words = append(words, Header(OpRegion, n))
	for i := n - 1; i >= 0; i-- {
		words = append(words, phit.NewConfigWord(uint8(region>>(7*i))&0x7F))
	}
	return words, nil
}

// ParseRegionSelect decodes a region select at the head of words,
// returning the region and the number of words consumed. It fails when
// the first word is not an OpRegion header or the ID words are missing.
func ParseRegionSelect(words []phit.ConfigWord) (region, consumed int, err error) {
	if len(words) == 0 {
		return 0, 0, fmt.Errorf("cfgproto: empty region select")
	}
	op, n := ParseHeader(words[0])
	if op != OpRegion {
		return 0, 0, fmt.Errorf("cfgproto: expected region select, got %v header", op)
	}
	if n < 1 || n > MaxRegionWords {
		return 0, 0, fmt.Errorf("cfgproto: region select with %d ID words (want 1..%d)", n, MaxRegionWords)
	}
	if len(words) < 1+n {
		return 0, 0, fmt.Errorf("cfgproto: truncated region select (%d of %d ID words)", len(words)-1, n)
	}
	for i := 1; i <= n; i++ {
		region = region<<7 | int(words[i].Bits&0x7F)
	}
	return region, 1 + n, nil
}

// Envelope wraps a complete packet in a region select.
func Envelope(region int, packet []phit.ConfigWord) ([]phit.ConfigWord, error) {
	if len(packet) == 0 {
		return nil, fmt.Errorf("cfgproto: empty packet")
	}
	sel, err := RegionSelect(region)
	if err != nil {
		return nil, err
	}
	return append(sel, packet...), nil
}

// DecodeEnvelope splits an enveloped packet into its region and payload.
func DecodeEnvelope(words []phit.ConfigWord) (region int, packet []phit.ConfigWord, err error) {
	region, consumed, err := ParseRegionSelect(words)
	if err != nil {
		return 0, nil, err
	}
	if len(words) == consumed {
		return 0, nil, fmt.Errorf("cfgproto: envelope with no payload")
	}
	return region, words[consumed:], nil
}

// PacketOp returns the effective opcode of a packet, looking through a
// leading region select if present. The configuration module uses it to
// classify staged packets (a read stays a read inside an envelope).
func PacketOp(words []phit.ConfigWord) (Op, error) {
	if len(words) == 0 {
		return OpNop, fmt.Errorf("cfgproto: empty packet")
	}
	op, _ := ParseHeader(words[0])
	if op != OpRegion {
		return op, nil
	}
	_, consumed, err := ParseRegionSelect(words)
	if err != nil {
		return OpNop, err
	}
	if len(words) <= consumed {
		return OpNop, fmt.Errorf("cfgproto: envelope with no payload")
	}
	op, _ = ParseHeader(words[consumed])
	if op == OpRegion {
		return OpNop, fmt.Errorf("cfgproto: nested region select")
	}
	return op, nil
}
