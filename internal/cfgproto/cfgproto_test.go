package cfgproto

import (
	"testing"
	"testing/quick"

	"daelite/internal/phit"
	"daelite/internal/slots"
)

func TestHeaderRoundTrip(t *testing.T) {
	for op := OpNop; op < numOps; op++ {
		for count := 0; count <= MaxPairs; count++ {
			gotOp, gotCount := ParseHeader(Header(op, count))
			if gotOp != op || gotCount != count {
				t.Fatalf("Header(%v,%d) parsed to %v,%d", op, count, gotOp, gotCount)
			}
		}
	}
}

func TestHeaderPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Header(numOps, 0) },
		func() { Header(OpNop, -1) },
		func() { Header(OpNop, MaxPairs+1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMaskWords(t *testing.T) {
	cases := map[int]int{1: 1, 7: 1, 8: 2, 14: 2, 16: 3, 32: 5, 64: 10}
	for wheel, want := range cases {
		if got := MaskWords(wheel); got != want {
			t.Fatalf("MaskWords(%d) = %d, want %d", wheel, got, want)
		}
	}
}

// TestFig6MaskEncoding checks the paper's example layout: an 8-slot wheel
// with slots {4,7} set transmits as two words.
func TestFig6MaskEncoding(t *testing.T) {
	m := slots.MaskOf(8, 4, 7)
	words := EncodeMask(m)
	if len(words) != 2 {
		t.Fatalf("got %d words", len(words))
	}
	// 14-bit field: 00000010010000 -> word0 = 0000001 (slot 7), word1 =
	// 0010000 (slot 4).
	if words[0].Bits != 0x01 || words[1].Bits != 0x10 {
		t.Fatalf("words = %#02x %#02x, want 0x01 0x10", words[0].Bits, words[1].Bits)
	}
	back, err := DecodeMask(words, 8)
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Fatalf("round trip %v != %v", back, m)
	}
}

func TestMaskRoundTripProperty(t *testing.T) {
	f := func(bits uint64, wheel8 uint8) bool {
		wheel := int(wheel8%slots.MaxTableSize) + 1
		var mask uint64
		if wheel == 64 {
			mask = ^uint64(0)
		} else {
			mask = 1<<uint(wheel) - 1
		}
		m := slots.Mask{Bits: bits & mask, Size: wheel}
		back, err := DecodeMask(EncodeMask(m), wheel)
		return err == nil && back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeMaskErrors(t *testing.T) {
	if _, err := DecodeMask([]phit.ConfigWord{phit.NewConfigWord(1)}, 8); err == nil {
		t.Fatal("wrong word count accepted")
	}
	// Bits beyond the wheel: word0 = 0x40 sets bit 13 of a 14-bit field,
	// outside an 8-slot wheel.
	bad := []phit.ConfigWord{phit.NewConfigWord(0x40), phit.NewConfigWord(0)}
	if _, err := DecodeMask(bad, 8); err == nil {
		t.Fatal("out-of-wheel bits accepted")
	}
}

func TestPortSpecRouterRoundTrip(t *testing.T) {
	for in := 0; in <= MaxRouterPort; in++ {
		for out := 0; out <= MaxRouterPort; out++ {
			w, err := RouterSpec(in, out).Encode()
			if err != nil {
				t.Fatal(err)
			}
			got := DecodeRouterSpec(w)
			if got.In != in || got.Out != out || got.ForNI {
				t.Fatalf("round trip (%d,%d) -> %+v", in, out, got)
			}
		}
	}
	// Tear-down encoding.
	w, err := RouterSpec(slots.NoInput, 3).Encode()
	if err != nil {
		t.Fatal(err)
	}
	got := DecodeRouterSpec(w)
	if got.In != slots.NoInput || got.Out != 3 {
		t.Fatalf("teardown round trip -> %+v", got)
	}
	if _, err := RouterSpec(8, 0).Encode(); err == nil {
		t.Fatal("bad input port accepted")
	}
	if _, err := RouterSpec(0, 7).Encode(); err == nil {
		t.Fatal("bad output port accepted")
	}
}

func TestPortSpecNIRoundTrip(t *testing.T) {
	for _, send := range []bool{false, true} {
		for _, enable := range []bool{false, true} {
			for ch := 0; ch <= MaxNIChannel; ch += 7 {
				w, err := NISpec(send, enable, ch).Encode()
				if err != nil {
					t.Fatal(err)
				}
				got := DecodeNISpec(w)
				if got.Send != send || got.Enable != enable || got.Channel != ch || !got.ForNI {
					t.Fatalf("round trip -> %+v", got)
				}
			}
		}
	}
	if _, err := NISpec(true, true, 32).Encode(); err == nil {
		t.Fatal("bad channel accepted")
	}
}

func TestPathSetupWordsLength(t *testing.T) {
	p := PathSetup{
		Mask: slots.MaskOf(8, 4, 7),
		Pairs: []Pair{
			{Element: 11, Spec: NISpec(false, true, 0)},
			{Element: 3, Spec: RouterSpec(1, 2)},
			{Element: 2, Spec: RouterSpec(2, 1)},
			{Element: 10, Spec: NISpec(true, true, 0)},
		},
	}
	words, err := p.Words()
	if err != nil {
		t.Fatal(err)
	}
	// header + 2 mask words + 4 pairs * 2 = 11 words, the count behind
	// the paper's "3 data words" host-side example (3 x 32-bit carries 12
	// symbols, one of them padding).
	if len(words) != 11 {
		t.Fatalf("words = %d, want 11", len(words))
	}
	if len(Pack32(words)) != 3 {
		t.Fatalf("Pack32 length = %d, want 3", len(Pack32(words)))
	}
}

func TestPathSetupValidation(t *testing.T) {
	if _, err := (PathSetup{Mask: slots.NewMask(8)}).Words(); err == nil {
		t.Fatal("empty pair list accepted")
	}
	long := PathSetup{Mask: slots.NewMask(8)}
	for i := 0; i < MaxPairs+1; i++ {
		long.Pairs = append(long.Pairs, Pair{Element: 1, Spec: RouterSpec(0, 0)})
	}
	if _, err := long.Words(); err == nil {
		t.Fatal("oversized pair list accepted")
	}
	bad := PathSetup{Mask: slots.NewMask(8), Pairs: []Pair{{Element: 200, Spec: RouterSpec(0, 0)}}}
	if _, err := bad.Words(); err == nil {
		t.Fatal("bad element ID accepted")
	}
}

func TestPack32RoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) > 60 {
			raw = raw[:60]
		}
		words := make([]phit.ConfigWord, len(raw))
		for i, b := range raw {
			words[i] = phit.NewConfigWord(b)
		}
		packed := Pack32(words)
		back, err := Unpack32(packed, len(words))
		if err != nil {
			return false
		}
		for i := range words {
			if back[i] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnpack32Bounds(t *testing.T) {
	if _, err := Unpack32([]uint32{0}, 5); err == nil {
		t.Fatal("overlong unpack accepted")
	}
	if _, err := Unpack32(nil, -1); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestRegSelect(t *testing.T) {
	r := RegSelect(RegCredit, 13)
	if RegClass(r) != RegCredit || RegChannel(r) != 13 {
		t.Fatalf("RegSelect round trip failed: %#x", r)
	}
	r = RegSelect(RegBus, 31)
	if RegClass(r) != RegBus || RegChannel(r) != 31 {
		t.Fatalf("RegSelect round trip failed: %#x", r)
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{OpNop: "nop", OpPathSetup: "path-setup", OpWriteReg: "write-reg", OpReadReg: "read-reg", Op(9): "op(9)"}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("Op(%d).String() = %q, want %q", op, op.String(), s)
		}
	}
}
