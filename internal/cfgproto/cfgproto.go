// Package cfgproto defines the daelite configuration wire format and the
// decoder state machine embedded in every router and NI configuration
// submodule.
//
// Configuration packets are sequences of 7-bit words transmitted one per
// cycle over the configuration tree's forward (broadcast) links. A path
// set-up packet consists of:
//
//	header | slot-mask words | (element-ID, port-spec) pairs ...
//
// The header carries a 3-bit opcode and a 4-bit pair count, so every
// element knows the exact packet length (the number of slot-mask words is
// ceil(wheel/7) and is a static network parameter). The pair list begins at
// the *destination* NI and walks backwards to the source, so downstream
// elements are configured before upstream ones start sending. Every element
// rotates its copy of the affected-slot mask down by one position after each
// processed pair, which compensates the one-slot-per-hop pipeline advance of
// the TDM wheel (see Fig. 6 of the paper). Tear-down reuses the set-up
// opcode with a "no input"/"disable" port spec.
//
// The host IP writes 32-bit words to its configuration module, which
// serializes them into 7-bit symbols; 0-padding at the tail of the last
// 32-bit word is permitted and ignored by length-aware decoders.
package cfgproto

import (
	"fmt"

	"daelite/internal/phit"
	"daelite/internal/slots"
)

// Op is a configuration packet opcode.
type Op uint8

const (
	// OpNop is ignored by all elements.
	OpNop Op = iota
	// OpPathSetup sets up or tears down path segments: the packet body
	// is the affected-slot mask followed by (ID, port-spec) pairs.
	OpPathSetup
	// OpWriteReg writes element registers: (ID, reg, value) triples.
	// Used to initialize credit counters, set connection state flags and
	// configure adjacent buses through the NI shell.
	OpWriteReg
	// OpReadReg reads one element register; the element answers on the
	// reverse (converging) path. At most one read is outstanding.
	OpReadReg
	// OpRegion is the region-select envelope header: its count field
	// gives the number of following region-ID words (base-128,
	// most-significant first). A region select prefixes a packet bound
	// for one configuration region of a partitioned platform; elements
	// skip it (their IDs are region-local), and the host-side region
	// router uses it to steer the packet onto the right tree.
	OpRegion
	numOps
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpNop:
		return "nop"
	case OpPathSetup:
		return "path-setup"
	case OpWriteReg:
		return "write-reg"
	case OpReadReg:
		return "read-reg"
	case OpRegion:
		return "region-select"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

const (
	// MaxPairs is the largest pair/triple count encodable in a header
	// (4 bits). Larger jobs are split into several packets; the protocol
	// explicitly supports independent path segments.
	MaxPairs = 15
	// MaxElements is the largest element ID + 1 (7-bit IDs).
	MaxElements = 128
	// PadElement is a reserved ID matching no element. Padding pairs
	// addressed to it burn one mask rotation each, which is how path
	// set-up packets step across pipelined (mesochronous/long) links
	// whose slot advance exceeds one.
	PadElement = 127
	// NoInputPort is the router input-port code meaning "stop driving
	// this output in the affected slots" (tear-down).
	NoInputPort = 7
	// MaxRouterPort is the largest router port index encodable (3
	// bits, 7 reserved for NoInputPort), matching the paper's arity-7
	// routers.
	MaxRouterPort = 6
	// MaxNIChannel is the largest NI channel index encodable (5 bits).
	MaxNIChannel = 31
)

// Header packs op and count into one 7-bit word.
func Header(op Op, count int) phit.ConfigWord {
	if op >= numOps {
		panic(fmt.Sprintf("cfgproto: bad opcode %d", op))
	}
	if count < 0 || count > MaxPairs {
		panic(fmt.Sprintf("cfgproto: pair count %d out of range", count))
	}
	return phit.NewConfigWord(uint8(op)<<4 | uint8(count))
}

// ParseHeader splits a header word.
func ParseHeader(w phit.ConfigWord) (Op, int) {
	return Op(w.Bits >> 4), int(w.Bits & 0x0F)
}

// MaskWords returns the number of 7-bit words needed to transmit a slot
// mask over a wheel of the given size.
func MaskWords(wheel int) int { return (wheel + 6) / 7 }

// EncodeMask serializes a slot mask into MaskWords(m.Size) words,
// transmitted most-significant group first: for an 8-slot wheel the first
// word carries slot 7 in its LSB and the second word carries slots 6..0,
// reproducing the Fig. 6 layout.
func EncodeMask(m slots.Mask) []phit.ConfigWord {
	n := MaskWords(m.Size)
	words := make([]phit.ConfigWord, n)
	for i := 0; i < n; i++ {
		shift := uint(7 * (n - 1 - i))
		words[i] = phit.NewConfigWord(uint8((m.Bits >> shift) & 0x7F))
	}
	return words
}

// DecodeMask reassembles a slot mask from its transmitted words.
func DecodeMask(words []phit.ConfigWord, wheel int) (slots.Mask, error) {
	if len(words) != MaskWords(wheel) {
		return slots.Mask{}, fmt.Errorf("cfgproto: %d mask words for wheel %d, want %d", len(words), wheel, MaskWords(wheel))
	}
	var bits uint64
	for _, w := range words {
		bits = bits<<7 | uint64(w.Bits&0x7F)
	}
	max := uint64(1)<<uint(wheel) - 1
	if wheel == 64 {
		max = ^uint64(0)
	}
	if bits&^max != 0 {
		return slots.Mask{}, fmt.Errorf("cfgproto: mask %#x has bits beyond wheel of %d", bits, wheel)
	}
	return slots.Mask{Bits: bits, Size: wheel}, nil
}

// PortSpec is the second word of a path set-up pair: the slot-table update
// an element applies to the slots currently marked in its rotated mask.
type PortSpec struct {
	// ForNI selects the NI layout (direction + enable + channel) rather
	// than the router layout (input + output port).
	ForNI bool

	// Router layout.
	In, Out int // In == slots.NoInput encodes tear-down

	// NI layout.
	Send    bool // true: TX slots for Channel; false: RX slots
	Enable  bool // false: tear-down (slots become idle)
	Channel int
}

// RouterSpec builds a router port spec; in == slots.NoInput tears down.
func RouterSpec(in, out int) PortSpec {
	return PortSpec{In: in, Out: out}
}

// NISpec builds an NI port spec.
func NISpec(send, enable bool, channel int) PortSpec {
	return PortSpec{ForNI: true, Send: send, Enable: enable, Channel: channel}
}

// Encode packs the spec into one 7-bit word.
func (p PortSpec) Encode() (phit.ConfigWord, error) {
	if p.ForNI {
		if p.Channel < 0 || p.Channel > MaxNIChannel {
			return phit.ConfigWord{}, fmt.Errorf("cfgproto: NI channel %d out of range", p.Channel)
		}
		var b uint8
		if p.Send {
			b |= 1 << 6
		}
		if p.Enable {
			b |= 1 << 5
		}
		b |= uint8(p.Channel)
		return phit.NewConfigWord(b), nil
	}
	in := p.In
	if in == slots.NoInput {
		in = NoInputPort
	}
	if in < 0 || in > NoInputPort {
		return phit.ConfigWord{}, fmt.Errorf("cfgproto: router input port %d out of range", p.In)
	}
	if p.Out < 0 || p.Out > MaxRouterPort {
		return phit.ConfigWord{}, fmt.Errorf("cfgproto: router output port %d out of range", p.Out)
	}
	return phit.NewConfigWord(uint8(in)<<3 | uint8(p.Out)), nil
}

// DecodeRouterSpec interprets a pair word with the router layout.
func DecodeRouterSpec(w phit.ConfigWord) PortSpec {
	in := int(w.Bits >> 3 & 0x7)
	if in == NoInputPort {
		in = slots.NoInput
	}
	return PortSpec{In: in, Out: int(w.Bits & 0x7)}
}

// DecodeNISpec interprets a pair word with the NI layout.
func DecodeNISpec(w phit.ConfigWord) PortSpec {
	return PortSpec{
		ForNI:   true,
		Send:    w.Bits&(1<<6) != 0,
		Enable:  w.Bits&(1<<5) != 0,
		Channel: int(w.Bits & 0x1F),
	}
}

// Pair is one (element, spec) step of a path segment, listed
// destination-first.
type Pair struct {
	Element int // element ID (0..127)
	Spec    PortSpec
}

// PathSetup is a complete path set-up (or tear-down) packet.
type PathSetup struct {
	// Mask holds the affected slots as seen by the FIRST pair's element
	// (the destination end of the segment); each later pair applies the
	// mask rotated down by its index.
	Mask  slots.Mask
	Pairs []Pair
}

// Words serializes the packet.
func (p PathSetup) Words() ([]phit.ConfigWord, error) {
	if len(p.Pairs) == 0 || len(p.Pairs) > MaxPairs {
		return nil, fmt.Errorf("cfgproto: %d pairs out of range 1..%d", len(p.Pairs), MaxPairs)
	}
	words := []phit.ConfigWord{Header(OpPathSetup, len(p.Pairs))}
	words = append(words, EncodeMask(p.Mask)...)
	for _, pr := range p.Pairs {
		if pr.Element < 0 || pr.Element >= MaxElements {
			return nil, fmt.Errorf("cfgproto: element ID %d out of range", pr.Element)
		}
		sw, err := pr.Spec.Encode()
		if err != nil {
			return nil, err
		}
		words = append(words, phit.NewConfigWord(uint8(pr.Element)), sw)
	}
	return words, nil
}

// RegWrite is one register write.
type RegWrite struct {
	Element int
	Reg     uint8 // 7-bit register select
	Value   uint8 // 7-bit value
}

// WriteRegPacket serializes register writes (up to MaxPairs per packet).
func WriteRegPacket(writes []RegWrite) ([]phit.ConfigWord, error) {
	if len(writes) == 0 || len(writes) > MaxPairs {
		return nil, fmt.Errorf("cfgproto: %d writes out of range 1..%d", len(writes), MaxPairs)
	}
	words := []phit.ConfigWord{Header(OpWriteReg, len(writes))}
	for _, w := range writes {
		if w.Element < 0 || w.Element >= MaxElements {
			return nil, fmt.Errorf("cfgproto: element ID %d out of range", w.Element)
		}
		words = append(words,
			phit.NewConfigWord(uint8(w.Element)),
			phit.NewConfigWord(w.Reg),
			phit.NewConfigWord(w.Value))
	}
	return words, nil
}

// ReadRegPacket serializes a single register read.
func ReadRegPacket(element int, reg uint8) ([]phit.ConfigWord, error) {
	if element < 0 || element >= MaxElements {
		return nil, fmt.Errorf("cfgproto: element ID %d out of range", element)
	}
	return []phit.ConfigWord{
		Header(OpReadReg, 1),
		phit.NewConfigWord(uint8(element)),
		phit.NewConfigWord(reg),
	}, nil
}

// Register select encoding shared by NIs (routers only implement slot-table
// updates): the top two bits select the register class, the low five bits
// the channel.
const (
	// RegFlags is the per-channel connection state flags register.
	RegFlags uint8 = 0 << 5
	// RegCredit is the per-channel source credit counter (remote buffer
	// space). Written at set-up to the destination queue capacity.
	RegCredit uint8 = 1 << 5
	// RegDelivered is the per-channel destination counter of delivered
	// words not yet returned as credits. Read-back support.
	RegDelivered uint8 = 2 << 5
	// RegBus addresses the adjacent bus's configuration port through the
	// NI shell; successive writes are deserialized into wide words.
	RegBus uint8 = 3 << 5
)

// RegSelect builds a register select for a channel.
func RegSelect(class uint8, channel int) uint8 {
	return class | uint8(channel&0x1F)
}

// RegClass extracts the register class from a select.
func RegClass(reg uint8) uint8 { return reg & (3 << 5) }

// RegChannel extracts the channel from a select.
func RegChannel(reg uint8) int { return int(reg & 0x1F) }

// Flag bits in RegFlags.
const (
	// FlagOpen marks the channel as configured and usable.
	FlagOpen uint8 = 1 << 0
	// FlagMulticast disables end-to-end flow control on the channel
	// (the source has a single credit counter, unusable with several
	// destinations).
	FlagMulticast uint8 = 1 << 1
)

// Pack32 packs 7-bit config words into 32-bit host words, four symbols per
// word, most-significant symbol first, zero-padded at the tail. This is the
// format the host IP writes to its configuration module.
func Pack32(words []phit.ConfigWord) []uint32 {
	var out []uint32
	for i := 0; i < len(words); i += 4 {
		var v uint32
		for j := 0; j < 4; j++ {
			v <<= 7
			if i+j < len(words) {
				v |= uint32(words[i+j].Bits & 0x7F)
			}
		}
		out = append(out, v)
	}
	return out
}

// Unpack32 recovers count 7-bit words from packed 32-bit host words.
func Unpack32(packed []uint32, count int) ([]phit.ConfigWord, error) {
	if count < 0 || count > len(packed)*4 {
		return nil, fmt.Errorf("cfgproto: cannot unpack %d words from %d uint32s", count, len(packed))
	}
	out := make([]phit.ConfigWord, 0, count)
	for i := 0; i < count; i++ {
		v := packed[i/4]
		shift := uint(7 * (3 - i%4))
		out = append(out, phit.NewConfigWord(uint8(v>>shift&0x7F)))
	}
	return out, nil
}
