package cfgproto

import (
	"fmt"

	"daelite/internal/phit"
	"daelite/internal/slots"
)

// Sink receives the decoded effects of configuration packets addressed to
// one element. Router and NI configuration submodules implement it.
type Sink interface {
	// ApplySlots updates the element's slot table: the slots in mask get
	// the duty described by spec. The mask is already rotated for this
	// element's position in the packet.
	ApplySlots(mask slots.Mask, spec PortSpec)
	// WriteReg writes a 7-bit value to a register.
	WriteReg(reg, value uint8)
	// ReadReg reads a register for the reverse path; ok=false produces
	// no response (reserved selects).
	ReadReg(reg uint8) (value uint8, ok bool)
}

// Decoder is the per-element configuration state machine. Feed it exactly
// the word stream appearing on the element's forward configuration input,
// one call per valid cycle.
type Decoder struct {
	id    int
	wheel int
	sink  Sink
	forNI bool

	state     decodeState
	op        Op
	remaining int // pairs/triples left in the packet
	maskBuf   []phit.ConfigWord
	mask      slots.Mask
	curElem   int
	curReg    uint8
	matched   bool
}

type decodeState int

const (
	stIdle decodeState = iota
	stMask
	stPairID
	stPairSpec
	stTripleID
	stTripleReg
	stTripleVal
	stReadID
	stReadReg
	stSkip
)

// NewDecoder returns a decoder for the element with the given ID on a wheel
// of the given size.
func NewDecoder(id, wheel int, sink Sink) *Decoder {
	if id < 0 || id >= MaxElements {
		panic(fmt.Sprintf("cfgproto: element ID %d out of range", id))
	}
	return &Decoder{id: id, wheel: wheel, sink: sink}
}

// Busy reports whether the decoder is mid-packet.
func (d *Decoder) Busy() bool { return d.state != stIdle }

// Feed consumes one configuration word and returns a reverse-path response
// when the word completes a read addressed to this element.
func (d *Decoder) Feed(w phit.ConfigWord) phit.Response {
	if !w.Valid {
		return phit.Response{}
	}
	switch d.state {
	case stIdle:
		op, count := ParseHeader(w)
		d.op = op
		d.remaining = count
		switch op {
		case OpPathSetup:
			d.maskBuf = d.maskBuf[:0]
			d.state = stMask
		case OpWriteReg:
			if count > 0 {
				d.state = stTripleID
			}
		case OpReadReg:
			if count > 0 {
				d.state = stReadID
			}
		case OpRegion:
			// Region-select envelope: element IDs are region-local, so
			// the region-ID words carry no information for an element —
			// consume them and resume at the enveloped packet's header.
			if count > 0 {
				d.state = stSkip
			}
		default: // OpNop and unknown opcodes are skipped
		}
	case stMask:
		d.maskBuf = append(d.maskBuf, w)
		if len(d.maskBuf) == MaskWords(d.wheel) {
			m, err := DecodeMask(d.maskBuf, d.wheel)
			if err != nil {
				// Malformed masks abort the packet; real hardware
				// would raise an error flag. The packet length is
				// still honoured via remaining pairs.
				m = slots.NewMask(d.wheel)
			}
			d.mask = m
			if d.remaining > 0 {
				d.state = stPairID
			} else {
				d.state = stIdle
			}
		}
	case stPairID:
		d.curElem = int(w.Bits)
		d.matched = d.curElem == d.id
		d.state = stPairSpec
	case stPairSpec:
		if d.matched {
			d.sink.ApplySlots(d.mask, d.decodeSpec(w))
		}
		// Every element rotates after every pair, matched or not, so
		// the rotation count always equals the pair index.
		d.mask = d.mask.RotateDown(1)
		d.remaining--
		if d.remaining > 0 {
			d.state = stPairID
		} else {
			d.state = stIdle
		}
	case stTripleID:
		d.curElem = int(w.Bits)
		d.matched = d.curElem == d.id
		d.state = stTripleReg
	case stTripleReg:
		d.curReg = w.Bits
		d.state = stTripleVal
	case stTripleVal:
		if d.matched {
			d.sink.WriteReg(d.curReg, w.Bits)
		}
		d.remaining--
		if d.remaining > 0 {
			d.state = stTripleID
		} else {
			d.state = stIdle
		}
	case stReadID:
		d.curElem = int(w.Bits)
		d.matched = d.curElem == d.id
		d.state = stReadReg
	case stReadReg:
		d.state = stIdle
		if d.matched {
			if v, ok := d.sink.ReadReg(w.Bits); ok {
				return phit.Response{Valid: true, Bits: v & 0x7F}
			}
		}
	case stSkip:
		d.remaining--
		if d.remaining <= 0 {
			d.state = stIdle
		}
	}
	return phit.Response{}
}

// decodeSpec picks the router or NI layout based on the element kind the
// decoder serves. The same wire bits are interpreted differently, exactly
// as in the hardware where routers and NIs have distinct configuration
// submodules.
func (d *Decoder) decodeSpec(w phit.ConfigWord) PortSpec {
	if d.forNI {
		return DecodeNISpec(w)
	}
	return DecodeRouterSpec(w)
}

// NewNIDecoder returns a decoder interpreting port specs with the NI
// layout.
func NewNIDecoder(id, wheel int, sink Sink) *Decoder {
	d := NewDecoder(id, wheel, sink)
	d.forNI = true
	return d
}
