package cfgproto

import (
	"testing"

	"daelite/internal/phit"
	"daelite/internal/slots"
)

// recordSink captures decoded effects.
type recordSink struct {
	applies []struct {
		Mask slots.Mask
		Spec PortSpec
	}
	writes []struct{ Reg, Val uint8 }
	regs   map[uint8]uint8
}

func (r *recordSink) ApplySlots(mask slots.Mask, spec PortSpec) {
	r.applies = append(r.applies, struct {
		Mask slots.Mask
		Spec PortSpec
	}{mask, spec})
}

func (r *recordSink) WriteReg(reg, value uint8) {
	r.writes = append(r.writes, struct{ Reg, Val uint8 }{reg, value})
	if r.regs == nil {
		r.regs = map[uint8]uint8{}
	}
	r.regs[reg] = value
}

func (r *recordSink) ReadReg(reg uint8) (uint8, bool) {
	v, ok := r.regs[reg]
	return v, ok
}

func feedAll(d *Decoder, words []phit.ConfigWord) []phit.Response {
	var resps []phit.Response
	for _, w := range words {
		if r := d.Feed(w); r.Valid {
			resps = append(resps, r)
		}
	}
	return resps
}

// TestFig6PathSetupExample replays the paper's Fig. 6 example through real
// decoders: path NI10 -> R10 -> R11 -> NI11, 8-slot wheel, destination
// slots {4,7}. Element IDs: NI10=10, R10=2, R11=3, NI11=11.
func TestFig6PathSetupExample(t *testing.T) {
	pkt := PathSetup{
		Mask: slots.MaskOf(8, 4, 7),
		Pairs: []Pair{
			{Element: 11, Spec: NISpec(false, true, 0)}, // NI-11: receive on channel 0
			{Element: 3, Spec: RouterSpec(1, 2)},        // R-11: input 1 -> output 2
			{Element: 2, Spec: RouterSpec(2, 1)},        // R-10: input 2 -> output 1
			{Element: 10, Spec: NISpec(true, true, 0)},  // NI-10: send channel 0
		},
	}
	words, err := pkt.Words()
	if err != nil {
		t.Fatal(err)
	}

	sinks := map[int]*recordSink{2: {}, 3: {}, 10: {}, 11: {}}
	decs := map[int]*Decoder{
		2:  NewDecoder(2, 8, sinks[2]),
		3:  NewDecoder(3, 8, sinks[3]),
		10: NewNIDecoder(10, 8, sinks[10]),
		11: NewNIDecoder(11, 8, sinks[11]),
	}
	for _, d := range decs {
		if resps := feedAll(d, words); len(resps) != 0 {
			t.Fatalf("path setup produced responses: %v", resps)
		}
		if d.Busy() {
			t.Fatal("decoder stuck mid-packet")
		}
	}

	check := func(id int, wantSlots []int, wantSpec PortSpec) {
		t.Helper()
		s := sinks[id]
		if len(s.applies) != 1 {
			t.Fatalf("element %d got %d applies, want 1", id, len(s.applies))
		}
		got := s.applies[0]
		gs := got.Mask.Slots()
		if len(gs) != len(wantSlots) {
			t.Fatalf("element %d slots %v, want %v", id, gs, wantSlots)
		}
		for i := range gs {
			if gs[i] != wantSlots[i] {
				t.Fatalf("element %d slots %v, want %v", id, gs, wantSlots)
			}
		}
		if got.Spec != wantSpec {
			t.Fatalf("element %d spec %+v, want %+v", id, got.Spec, wantSpec)
		}
	}
	// The paper's numbers: NI-11 {4,7}; R-11 {3,6}; R-10 {2,5}; and by
	// extension NI-10 injects at {1,4}.
	check(11, []int{4, 7}, NISpec(false, true, 0))
	check(3, []int{3, 6}, RouterSpec(1, 2))
	check(2, []int{2, 5}, RouterSpec(2, 1))
	check(10, []int{1, 4}, NISpec(true, true, 0))
}

func TestDecoderIgnoresOtherElements(t *testing.T) {
	pkt := PathSetup{
		Mask:  slots.MaskOf(8, 0),
		Pairs: []Pair{{Element: 5, Spec: RouterSpec(0, 1)}},
	}
	words, _ := pkt.Words()
	s := &recordSink{}
	d := NewDecoder(6, 8, s)
	feedAll(d, words)
	if len(s.applies) != 0 {
		t.Fatal("decoder applied a pair addressed elsewhere")
	}
}

func TestDecoderMultiplePairsSameElement(t *testing.T) {
	// A multicast fork: the same router appears twice (two outputs fed
	// by one input). Masks must rotate between the two pairs.
	pkt := PathSetup{
		Mask: slots.MaskOf(8, 4),
		Pairs: []Pair{
			{Element: 9, Spec: RouterSpec(0, 1)},
			{Element: 9, Spec: RouterSpec(0, 2)},
		},
	}
	words, _ := pkt.Words()
	s := &recordSink{}
	feedAll(NewDecoder(9, 8, s), words)
	if len(s.applies) != 2 {
		t.Fatalf("applies = %d, want 2", len(s.applies))
	}
	if got := s.applies[0].Mask.Slots(); got[0] != 4 {
		t.Fatalf("first apply slots %v", got)
	}
	if got := s.applies[1].Mask.Slots(); got[0] != 3 {
		t.Fatalf("second apply slots %v (rotation between pairs missing)", got)
	}
}

func TestDecoderWriteRead(t *testing.T) {
	writes := []RegWrite{
		{Element: 4, Reg: RegSelect(RegCredit, 2), Value: 63},
		{Element: 5, Reg: RegSelect(RegFlags, 2), Value: FlagOpen},
	}
	words, err := WriteRegPacket(writes)
	if err != nil {
		t.Fatal(err)
	}
	s4, s5 := &recordSink{}, &recordSink{}
	d4, d5 := NewNIDecoder(4, 8, s4), NewNIDecoder(5, 8, s5)
	feedAll(d4, words)
	feedAll(d5, words)
	if len(s4.writes) != 1 || s4.writes[0].Val != 63 {
		t.Fatalf("element 4 writes = %+v", s4.writes)
	}
	if len(s5.writes) != 1 || s5.writes[0].Val != FlagOpen {
		t.Fatalf("element 5 writes = %+v", s5.writes)
	}

	// Read back element 4's credit register.
	rd, err := ReadRegPacket(4, RegSelect(RegCredit, 2))
	if err != nil {
		t.Fatal(err)
	}
	resps := feedAll(d4, rd)
	if len(resps) != 1 || resps[0].Bits != 63 {
		t.Fatalf("read responses = %v", resps)
	}
	// The other element must stay silent.
	if resps := feedAll(d5, rd); len(resps) != 0 {
		t.Fatalf("unaddressed element responded: %v", resps)
	}
}

func TestDecoderReadUnknownRegSilent(t *testing.T) {
	rd, _ := ReadRegPacket(4, RegSelect(RegDelivered, 9))
	s := &recordSink{} // empty regs map -> ok=false
	if resps := feedAll(NewNIDecoder(4, 8, s), rd); len(resps) != 0 {
		t.Fatalf("unknown register produced response: %v", resps)
	}
}

func TestDecoderIdleCyclesStall(t *testing.T) {
	pkt := PathSetup{
		Mask:  slots.MaskOf(8, 1),
		Pairs: []Pair{{Element: 7, Spec: RouterSpec(0, 1)}},
	}
	words, _ := pkt.Words()
	s := &recordSink{}
	d := NewDecoder(7, 8, s)
	for _, w := range words {
		d.Feed(phit.ConfigWord{}) // interleave idle cycles
		d.Feed(w)
	}
	if len(s.applies) != 1 {
		t.Fatalf("idle interleave broke decoding: %d applies", len(s.applies))
	}
}

func TestDecoderNopAndBackToBackPackets(t *testing.T) {
	s := &recordSink{}
	d := NewDecoder(1, 8, s)
	var stream []phit.ConfigWord
	stream = append(stream, Header(OpNop, 0))
	p1, _ := (PathSetup{Mask: slots.MaskOf(8, 2), Pairs: []Pair{{Element: 1, Spec: RouterSpec(0, 1)}}}).Words()
	p2, _ := (PathSetup{Mask: slots.MaskOf(8, 5), Pairs: []Pair{{Element: 1, Spec: RouterSpec(2, 0)}}}).Words()
	stream = append(stream, p1...)
	stream = append(stream, p2...)
	feedAll(d, stream)
	if len(s.applies) != 2 {
		t.Fatalf("applies = %d, want 2", len(s.applies))
	}
	if s.applies[0].Spec.Out != 1 || s.applies[1].Spec.Out != 0 {
		t.Fatalf("packet contents confused: %+v", s.applies)
	}
}

func TestDecoderBadIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDecoder(MaxElements, 8, &recordSink{})
}

func TestDecoderTeardownSpec(t *testing.T) {
	pkt := PathSetup{
		Mask:  slots.MaskOf(8, 3),
		Pairs: []Pair{{Element: 2, Spec: RouterSpec(slots.NoInput, 4)}},
	}
	words, _ := pkt.Words()
	s := &recordSink{}
	feedAll(NewDecoder(2, 8, s), words)
	if len(s.applies) != 1 || s.applies[0].Spec.In != slots.NoInput || s.applies[0].Spec.Out != 4 {
		t.Fatalf("teardown spec = %+v", s.applies)
	}
}
