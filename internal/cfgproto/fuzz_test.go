package cfgproto

import (
	"testing"
	"testing/quick"

	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/slots"
)

// TestDecoderStreamFuzz drives many decoders with a random but well-formed
// packet stream and checks that (a) every element applies exactly the
// pairs addressed to it, (b) the masks it receives are the transmitted
// masks rotated by the pair index, and (c) no decoder is left mid-packet.
func TestDecoderStreamFuzz(t *testing.T) {
	const wheel = 16
	const numElems = 12
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		sinks := make([]*recordSink, numElems)
		decs := make([]*Decoder, numElems)
		for i := range decs {
			sinks[i] = &recordSink{}
			if rng.Intn(2) == 0 {
				decs[i] = NewDecoder(i, wheel, sinks[i])
			} else {
				decs[i] = NewNIDecoder(i, wheel, sinks[i])
			}
		}
		type expect struct {
			elem int
			mask slots.Mask
		}
		var expected []expect
		var stream []phit.ConfigWord

		numPackets := 1 + rng.Intn(6)
		for p := 0; p < numPackets; p++ {
			switch rng.Intn(3) {
			case 0: // nop
				stream = append(stream, Header(OpNop, 0))
			case 1: // path setup
				mask := slots.Mask{Bits: rng.Uint64() & (1<<wheel - 1), Size: wheel}
				numPairs := 1 + rng.Intn(MaxPairs)
				pkt := PathSetup{Mask: mask}
				for k := 0; k < numPairs; k++ {
					elem := rng.Intn(numElems)
					pkt.Pairs = append(pkt.Pairs, Pair{
						Element: elem,
						Spec:    RouterSpec(rng.Intn(7), rng.Intn(7)),
					})
					expected = append(expected, expect{elem: elem, mask: mask.RotateDown(k)})
				}
				words, err := pkt.Words()
				if err != nil {
					return false
				}
				stream = append(stream, words...)
			case 2: // register writes
				numWrites := 1 + rng.Intn(MaxPairs)
				var writes []RegWrite
				for k := 0; k < numWrites; k++ {
					writes = append(writes, RegWrite{
						Element: rng.Intn(numElems),
						Reg:     uint8(rng.Intn(128)),
						Value:   uint8(rng.Intn(128)),
					})
				}
				words, err := WriteRegPacket(writes)
				if err != nil {
					return false
				}
				stream = append(stream, words...)
			}
			// Random idle gaps between packets.
			for g := rng.Intn(3); g > 0; g-- {
				stream = append(stream, phit.ConfigWord{})
			}
		}

		for _, w := range stream {
			for _, d := range decs {
				d.Feed(w)
			}
		}
		for i, d := range decs {
			if d.Busy() {
				return false
			}
			// Collect the applies expected for this element, in
			// order.
			var want []expect
			for _, e := range expected {
				if e.elem == i {
					want = append(want, e)
				}
			}
			if len(sinks[i].applies) != len(want) {
				return false
			}
			for k, a := range sinks[i].applies {
				if a.Mask != want[k].mask {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDecoderGarbageResilience feeds random garbage words; decoders must
// never panic and must always return to idle given enough idle input.
func TestDecoderGarbageResilience(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		d := NewDecoder(3, 16, &recordSink{})
		for i := 0; i < 200; i++ {
			d.Feed(phit.NewConfigWord(uint8(rng.Uint64())))
		}
		// Any packet the garbage started is bounded in length; a
		// stream of NOP headers drains it.
		for i := 0; i < MaxPairs*3+MaskWords(16)+2; i++ {
			d.Feed(Header(OpNop, 0))
		}
		return !d.Busy()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
