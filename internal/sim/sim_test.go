package sim

import (
	"testing"
	"testing/quick"
)

// counter increments a register every cycle; used to validate two-phase
// semantics.
type counter struct {
	r *Reg[int]
}

func (c *counter) Name() string { return "counter" }
func (c *counter) Eval(uint64)  { c.r.Set(c.r.Get() + 1) }
func (c *counter) Commit()      {}

func TestRegTwoPhase(t *testing.T) {
	s := New()
	r := NewReg(s, 10)
	s.Add(&counter{r: r})
	if got := r.Get(); got != 10 {
		t.Fatalf("initial Get = %d, want 10", got)
	}
	s.Step()
	if got := r.Get(); got != 11 {
		t.Fatalf("after 1 cycle Get = %d, want 11", got)
	}
	s.Run(9)
	if got := r.Get(); got != 20 {
		t.Fatalf("after 10 cycles Get = %d, want 20", got)
	}
	if s.Cycle() != 10 {
		t.Fatalf("Cycle = %d, want 10", s.Cycle())
	}
}

// relay copies src into dst each cycle; a chain of relays must behave as a
// shift register, proving Eval order independence.
type relay struct {
	label    string
	src, dst *Reg[int]
}

func (r *relay) Name() string { return r.label }
func (r *relay) Eval(uint64)  { r.dst.Set(r.src.Get()) }
func (r *relay) Commit()      {}

func TestShiftRegisterOrderIndependence(t *testing.T) {
	// Build the chain twice: once in forward order, once reversed. The
	// observable behaviour must be identical.
	build := func(reversed bool) []int {
		s := New()
		const n = 5
		regs := make([]*Reg[int], n+1)
		for i := range regs {
			regs[i] = NewReg(s, 0)
		}
		comps := make([]Component, n)
		for i := 0; i < n; i++ {
			comps[i] = &relay{label: "relay", src: regs[i], dst: regs[i+1]}
		}
		if reversed {
			for i, j := 0, len(comps)-1; i < j; i, j = i+1, j-1 {
				comps[i], comps[j] = comps[j], comps[i]
			}
		}
		for _, c := range comps {
			s.Add(c)
		}
		// Drive the head with the cycle number.
		s.Add(&Func{Label: "drive", OnEval: func(cy uint64) { regs[0].Set(int(cy) + 1) }})
		var out []int
		for i := 0; i < 12; i++ {
			s.Step()
			out = append(out, regs[n].Get())
		}
		return out
	}
	fwd := build(false)
	rev := build(true)
	for i := range fwd {
		if fwd[i] != rev[i] {
			t.Fatalf("cycle %d: forward %d != reversed %d", i, fwd[i], rev[i])
		}
	}
	// After n cycles of latency the tail must reproduce the input stream.
	want := []int{0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7}
	for i := range want {
		if fwd[i] != want[i] {
			t.Fatalf("tail[%d] = %d, want %d (%v)", i, fwd[i], want[i], fwd)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	r := NewReg(s, 0)
	s.Add(&counter{r: r})
	cycle, ok := s.RunUntil(func() bool { return r.Get() >= 7 }, 100)
	if !ok {
		t.Fatal("condition never held")
	}
	if cycle != 7 {
		t.Fatalf("condition held at cycle %d, want 7", cycle)
	}
	_, ok = s.RunUntil(func() bool { return false }, 5)
	if ok {
		t.Fatal("impossible condition reported as held")
	}
}

func TestStop(t *testing.T) {
	s := New()
	r := NewReg(s, 0)
	s.Add(&counter{r: r})
	s.Add(&Func{Label: "stopper", OnEval: func(uint64) {
		if r.Get() == 3 {
			s.Stop("hit 3")
		}
	}})
	ran := s.Run(100)
	if ran >= 100 {
		t.Fatal("Stop did not halt the run")
	}
	stopped, reason := s.Stopped()
	if !stopped || reason != "hit 3" {
		t.Fatalf("Stopped() = %v %q", stopped, reason)
	}
}

func TestProbeSeesSettledState(t *testing.T) {
	s := New()
	r := NewReg(s, 0)
	s.Add(&counter{r: r})
	var seen []int
	s.AddProbe(func(uint64) { seen = append(seen, r.Get()) })
	s.Run(4)
	want := []int{1, 2, 3, 4}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("probe[%d] = %d, want %d", i, seen[i], want[i])
		}
	}
}

func TestPeek(t *testing.T) {
	s := New()
	r := NewReg(s, 1)
	if r.Peek() != 1 {
		t.Fatal("Peek before Set should return current")
	}
	r.Set(9)
	if r.Peek() != 9 {
		t.Fatal("Peek after Set should return next")
	}
	if r.Get() != 1 {
		t.Fatal("Get must not observe uncommitted value")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	f := func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	f := func(n uint8) bool {
		m := int(n % 64)
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make(map[int]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRNGShuffleDeterministic pins the determinism contract the chaos
// layer depends on: identically seeded RNGs shuffle identically, and the
// result is a permutation.
func TestRNGShuffleDeterministic(t *testing.T) {
	shuffle := func(seed uint64) []int {
		r := NewRNG(seed)
		s := make([]int, 32)
		for i := range s {
			s[i] = i
		}
		r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
		return s
	}
	a, b := shuffle(99), shuffle(99)
	seen := make(map[int]bool, len(a))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= len(a) || seen[a[i]] {
			t.Fatalf("not a permutation: %v", a)
		}
		seen[a[i]] = true
	}
	c := shuffle(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced the same shuffle")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestComponentNamesSorted(t *testing.T) {
	s := New()
	s.Add(&Func{Label: "zeta"})
	s.Add(&Func{Label: "alpha"})
	names := s.ComponentNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("ComponentNames = %v", names)
	}
}
