package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures a Simulator's execution strategy.
type Options struct {
	// Workers is the target parallelism of the Eval, Commit and
	// register-commit phases: 0 selects one worker per available CPU
	// (runtime.GOMAXPROCS), 1 forces the purely sequential kernel, and
	// any larger value is used as given. Regardless of Workers, a phase
	// falls back to the sequential path automatically when the platform
	// is too small for the per-phase barrier to pay for itself.
	Workers int
}

// Per-phase sizing. A phase only runs on the pool when it has at least
// this many items; below the threshold the barrier (two channel
// operations per worker plus a WaitGroup wait) costs more than the
// work it would spread. Register commits are branch-predictable
// two-word copies, so they need far more items than component Evals,
// which walk slot tables and queues.
const (
	minParallelComponents = 64
	minParallelRegs       = 4096
	componentChunk        = 16
	regChunk              = 1024
)

// workerPool is a set of persistent goroutines that execute one phase
// closure at a time. run is a barrier: it returns only after every
// worker (and the calling goroutine, which participates as worker 0)
// has finished the closure, which is what gives the kernel its
// Eval -> Commit -> register-commit phase ordering.
type workerPool struct {
	procs int // pool goroutines, excluding the caller
	work  chan func()
	wg    sync.WaitGroup
	once  sync.Once
}

func newWorkerPool(procs int) *workerPool {
	p := &workerPool{procs: procs, work: make(chan func(), procs)}
	for i := 0; i < procs; i++ {
		go func() {
			for f := range p.work {
				f()
				p.wg.Done()
			}
		}()
	}
	return p
}

// run executes f concurrently on every pool goroutine and the caller,
// returning when all of them have finished.
func (p *workerPool) run(f func()) {
	p.wg.Add(p.procs)
	for i := 0; i < p.procs; i++ {
		p.work <- f
	}
	f()
	p.wg.Wait()
}

// shutdown terminates the pool goroutines. Idempotent.
func (p *workerPool) shutdown() {
	p.once.Do(func() { close(p.work) })
}

// resolveWorkers maps an Options.Workers value to an effective count.
func resolveWorkers(w int) int {
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		return 1
	}
	return w
}

// parallel reports whether a phase over n items should use the pool.
func (s *Simulator) parallel(n, min int) bool {
	return s.workers > 1 && n >= min
}

// ensurePool lazily starts the worker pool the first time a phase goes
// parallel. The pool goroutines reference only the pool itself, so a
// Simulator that becomes unreachable is still collectable: the cleanup
// closes the work channel and the goroutines exit.
func (s *Simulator) ensurePool() *workerPool {
	if s.pool == nil {
		s.pool = newWorkerPool(s.workers - 1)
		runtime.AddCleanup(s, func(p *workerPool) { p.shutdown() }, s.pool)
	}
	return s.pool
}

// runSharded executes fn over [0, n) on the worker pool. Workers grab
// fixed-size chunks from a shared cursor until the range is exhausted,
// which keeps them balanced even when item costs vary (a router's Eval
// walks a slot table; a pipeline stage copies one register).
func (s *Simulator) runSharded(n, chunk int, fn func(start, end int)) {
	var cursor atomic.Int64
	s.ensurePool().run(func() {
		for {
			end := int(cursor.Add(int64(chunk)))
			start := end - chunk
			if start >= n {
				return
			}
			if end > n {
				end = n
			}
			fn(start, end)
		}
	})
}

// Workers returns the simulator's effective worker count (1 means the
// sequential kernel).
func (s *Simulator) Workers() int { return s.workers }

// Shutdown releases the worker pool, if one was started, and pins the
// simulator to the sequential path. Further Steps remain valid. It is
// safe to call Shutdown more than once; it is not required — an
// unreachable Simulator's pool is reclaimed automatically.
func (s *Simulator) Shutdown() {
	if s.pool != nil {
		s.pool.shutdown()
		s.pool = nil
	}
	s.workers = 1
}
