package sim

import (
	"runtime"
	"testing"
)

// BenchmarkKernelStep measures raw kernel throughput: N relay components
// shifting values through registers, the workload shape of a platform
// simulation. The Par variants run the same model on the parallel kernel
// with one worker per CPU.
func benchKernel(b *testing.B, workers, n int) {
	s := NewWithOptions(Options{Workers: workers})
	regs := make([]*Reg[int], n+1)
	for i := range regs {
		regs[i] = NewReg(s, 0)
	}
	for i := 0; i < n; i++ {
		s.Add(&relay{label: "relay", src: regs[i], dst: regs[i+1]})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkKernelStep16(b *testing.B)      { benchKernel(b, 1, 16) }
func BenchmarkKernelStep256(b *testing.B)     { benchKernel(b, 1, 256) }
func BenchmarkKernelStep4096(b *testing.B)    { benchKernel(b, 1, 4096) }
func BenchmarkKernelStep256Par(b *testing.B)  { benchKernel(b, runtime.GOMAXPROCS(0), 256) }
func BenchmarkKernelStep4096Par(b *testing.B) { benchKernel(b, runtime.GOMAXPROCS(0), 4096) }

// BenchmarkRegSetGet isolates the register primitive.
func BenchmarkRegSetGet(b *testing.B) {
	s := New()
	r := NewReg(s, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Set(r.Get() + 1)
		r.commit()
	}
}
