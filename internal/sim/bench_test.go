package sim

import "testing"

// BenchmarkKernelStep measures raw kernel throughput: N relay components
// shifting values through registers, the workload shape of a platform
// simulation.
func benchKernel(b *testing.B, n int) {
	s := New()
	regs := make([]*Reg[int], n+1)
	for i := range regs {
		regs[i] = NewReg(s, 0)
	}
	for i := 0; i < n; i++ {
		s.Add(&relay{label: "relay", src: regs[i], dst: regs[i+1]})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkKernelStep16(b *testing.B)  { benchKernel(b, 16) }
func BenchmarkKernelStep256(b *testing.B) { benchKernel(b, 256) }

// BenchmarkRegSetGet isolates the register primitive.
func BenchmarkRegSetGet(b *testing.B) {
	s := New()
	r := NewReg(s, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Set(r.Get() + 1)
		r.commit()
	}
}
