package sim

import (
	"runtime"
	"testing"
)

// buildChain wires n relays shifting a driven value through n+1 registers
// and returns the simulator plus the register at tap (observation point).
// With n >= 64 the component phases take the parallel path, and with
// n >= 4096 the register commit does too.
func buildChain(workers, n, tap int) (*Simulator, *Reg[int]) {
	s := NewWithOptions(Options{Workers: workers})
	regs := make([]*Reg[int], n+1)
	for i := range regs {
		regs[i] = NewReg(s, 0)
	}
	for i := 0; i < n; i++ {
		s.Add(&relay{label: "relay", src: regs[i], dst: regs[i+1]})
	}
	s.Add(&Func{Label: "drive", OnEval: func(cy uint64) { regs[0].Set(int(cy) + 1) }})
	return s, regs[tap]
}

// TestParallelMatchesSequential proves the tentpole claim at kernel level:
// sharding Eval/Commit/register-commit across workers yields a stream of
// observed values bit-identical to the sequential kernel, for a model big
// enough to exercise both parallel phases.
func TestParallelMatchesSequential(t *testing.T) {
	const n = 5000 // > minParallelRegs registers, > minParallelComponents components
	const cycles = 300
	run := func(workers int) []int {
		s, tap := buildChain(workers, n, 128)
		var out []int
		for i := 0; i < cycles; i++ {
			s.Step()
			out = append(out, tap.Get())
		}
		return out
	}
	seq := run(1)
	for _, w := range []int{0, 2, 4, runtime.GOMAXPROCS(0)} {
		par := run(w)
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d diverged at cycle %d: %d != %d", w, i, par[i], seq[i])
			}
		}
	}
}

// TestWorkersIdenticalCycleCounts pins that Workers 0, 1 and NumCPU all
// halt at the same cycle for the same model and stop condition.
func TestWorkersIdenticalCycleCounts(t *testing.T) {
	counts := make(map[int]uint64)
	for _, w := range []int{0, 1, runtime.NumCPU()} {
		s, tail := buildChain(w, 200, 200)
		cycle, ok := s.RunUntil(func() bool { return tail.Get() >= 40 }, 10_000)
		if !ok {
			t.Fatalf("workers=%d: condition never held", w)
		}
		counts[w] = cycle
	}
	want := counts[1]
	for w, got := range counts {
		if got != want {
			t.Fatalf("workers=%d halted at cycle %d, sequential at %d", w, got, want)
		}
	}
}

// TestStopFromProbeMidRun covers the probe -> Stop path: probes run
// sequentially after commit, and a Stop they issue must halt Run after
// the current cycle with the cycle counter intact.
func TestStopFromProbeMidRun(t *testing.T) {
	for _, w := range []int{1, 4} {
		s, _ := buildChain(w, 100, 0)
		s.AddProbe(func(cy uint64) {
			if cy == 7 {
				s.Stop("probe says enough")
			}
		})
		ran := s.Run(1000)
		if ran != 7 {
			t.Fatalf("workers=%d: Run executed %d cycles, want 7", w, ran)
		}
		if s.Cycle() != 7 {
			t.Fatalf("workers=%d: Cycle() = %d, want 7", w, s.Cycle())
		}
		stopped, reason := s.Stopped()
		if !stopped || reason != "probe says enough" {
			t.Fatalf("workers=%d: Stopped() = %v %q", w, stopped, reason)
		}
	}
}

// TestStopFromParallelEval covers concurrent Stop calls from evaluating
// components: the run halts and one of the issued reasons is retained.
func TestStopFromParallelEval(t *testing.T) {
	s := NewWithOptions(Options{Workers: 4})
	for i := 0; i < 128; i++ {
		s.Add(&Func{Label: "stopper", OnEval: func(cy uint64) {
			if cy == 3 {
				s.Stop("component stop")
			}
		}})
	}
	ran := s.Run(100)
	if ran != 4 {
		t.Fatalf("Run executed %d cycles, want 4 (stop requested during cycle 3)", ran)
	}
	stopped, reason := s.Stopped()
	if !stopped || reason != "component stop" {
		t.Fatalf("Stopped() = %v %q", stopped, reason)
	}
}

// idle is a component that never Sets any register.
type idle struct{ evals int }

func (c *idle) Name() string { return "idle" }
func (c *idle) Eval(uint64)  { c.evals++ }
func (c *idle) Commit()      {}

// TestComponentNeverSets covers the never-Set edge case: registers owned
// by a silent component keep their initial value through parallel and
// sequential commits alike, and its Eval still runs every cycle.
func TestComponentNeverSets(t *testing.T) {
	for _, w := range []int{1, 4} {
		s := NewWithOptions(Options{Workers: w})
		quiet := NewReg(s, 42)
		silent := &idle{}
		s.Add(silent)
		// Enough active components and registers to trip the parallel
		// phases alongside the silent one.
		regs := make([]*Reg[int], 5001)
		for i := range regs {
			regs[i] = NewReg(s, 0)
		}
		for i := 0; i < 5000; i++ {
			s.Add(&relay{label: "relay", src: regs[i], dst: regs[i+1]})
		}
		s.Run(25)
		if got := quiet.Get(); got != 42 {
			t.Fatalf("workers=%d: untouched register changed to %d", w, got)
		}
		if silent.evals != 25 {
			t.Fatalf("workers=%d: silent component evaluated %d times, want 25", w, silent.evals)
		}
	}
}

// TestOrderedTailSemantics pins the AddOrdered contract the fault injector
// and traffic endpoints rely on: ordered components run after the whole
// parallel set each phase, observe pending values via Peek, and may
// override them — with any worker count.
func TestOrderedTailSemantics(t *testing.T) {
	for _, w := range []int{1, 8} {
		s := NewWithOptions(Options{Workers: w})
		wires := make([]*Reg[int], 100)
		for i := range wires {
			i := i
			wires[i] = NewReg(s, 0)
			s.Add(&Func{Label: "drv", OnEval: func(cy uint64) { wires[i].Set(int(cy) + 100) }})
		}
		var sawPending bool
		s.AddOrdered(&Func{Label: "override", OnEval: func(cy uint64) {
			if wires[0].Peek() == int(cy)+100 {
				sawPending = true
			}
			wires[0].Set(-1)
		}})
		s.Step()
		if !sawPending {
			t.Fatalf("workers=%d: ordered component did not observe the pending value", w)
		}
		if got := wires[0].Get(); got != -1 {
			t.Fatalf("workers=%d: override lost, wire committed %d", w, got)
		}
		if got := wires[1].Get(); got != 100 {
			t.Fatalf("workers=%d: untouched wire committed %d, want 100", w, got)
		}
	}
}

// TestShutdownFallsBackSequential verifies Shutdown releases the pool and
// the simulator keeps stepping correctly on the sequential path.
func TestShutdownFallsBackSequential(t *testing.T) {
	s, tail := buildChain(4, 200, 10)
	s.Run(50)
	mid := tail.Get()
	s.Shutdown()
	if s.Workers() != 1 {
		t.Fatalf("Workers() after Shutdown = %d", s.Workers())
	}
	s.Run(50)
	if tail.Get() <= mid {
		t.Fatal("simulation did not progress after Shutdown")
	}
	s.Shutdown() // idempotent
}
