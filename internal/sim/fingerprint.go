package sim

// Fingerprint is an order-sensitive FNV-1a fold used to summarize a
// simulation run into one word: determinism checks hash every observed
// wire value (with its cycle) and compare the folds across kernel
// worker counts or repeated runs — any divergence, however small,
// changes the fingerprint. The zero value is ready to use.
type Fingerprint uint64

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Mix folds one 64-bit value into the fingerprint, byte by byte.
func (f Fingerprint) Mix(v uint64) Fingerprint {
	h := uint64(f)
	if h == 0 {
		h = fnvOffset
	}
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xFF
		h *= fnvPrime
	}
	return Fingerprint(h)
}

// Sum returns the current fold.
func (f Fingerprint) Sum() uint64 { return uint64(f) }
