package sim

// Fast-forward: the model-guided hybrid execution mode. A platform that
// is *quiescent* — every component reports that its next Eval/Commit
// would leave all observable state exactly where it is — evolves
// P-periodically, where P is the slot-wheel hyper-period (wheel size ×
// words per slot): the only signals still moving are the credit carriers
// the TDM schedule emits on reserved slots, and those repeat exactly
// every P cycles. The kernel can therefore advance the clock in whole
// multiples of P without evaluating anything, and the state it resumes
// from is bit-identical to what cycle-accurate execution would have
// produced: same wire fingerprints (which fold valid payload flits only,
// and a quiescent platform carries none), same telemetry counters (which
// cannot change while every component is inert), same traces.
//
// Correctness is default-deny. Every component registered with the
// simulator — parallel set and ordered tail alike — must implement
// Quiescer and report Quiet, and every registered quiescence gate must
// agree, or no cycle is ever skipped. A component that cannot prove its
// own inertness simply doesn't implement the interface and thereby
// pins the platform to cycle-accurate execution.
//
// Entry additionally waits out a settle window: after the last non-quiet
// scan, the platform runs cycle-accurately for `settle` more cycles so
// in-flight transients (credit streams of a freshly opened connection
// propagating toward the far side of the mesh, stale flits draining out
// of link pipelines) reach their periodic steady state before any state
// is frozen. Exit is exact: each component's Until bounds the skip to
// strictly before the first cycle at which it may act again (a replayer
// event, a fault window opening), so that cycle executes for real.

// Quiescence is one component's answer to "may I be skipped?".
type Quiescence struct {
	// Quiet reports that, as long as no other component acts, this
	// component's Eval and Commit change no observable state: no
	// register takes a new value (beyond re-latching the P-periodic
	// slot-wheel pattern), no counter moves, no RNG is consumed, no
	// event is emitted.
	Quiet bool
	// Until is the first cycle whose Step must execute for real (the
	// component arms then: a scheduled event, a fault window, a
	// deadline). 0 means unbounded — quiet until some other component
	// or the host acts.
	Until uint64
}

// Quiescer is implemented by components that can prove their own
// inertness. Quiescence is only consulted on the stepping goroutine,
// between steps, with all state settled.
type Quiescer interface {
	Quiescence(now uint64) Quiescence
}

// QuiescenceFunc is a standalone quiescence gate registered via
// AddQuiescer — the hook for platform-level conditions no single
// component owns (outstanding host-side transactions, stall-detection
// windows).
type QuiescenceFunc func(now uint64) Quiescence

// FastForwarder is implemented by components that keep a shadow of the
// clock (e.g. for stamping host-side submissions) and need to resync it
// after a skip. OnFastForward(from, to) is called on the stepping
// goroutine immediately after the clock jumps from `from` to `to`.
type FastForwarder interface {
	OnFastForward(from, to uint64)
}

// FastForwardHook is the standalone form of FastForwarder, registered
// via AddFastForwardHook — the closed-form catch-up hook for observers
// (statistics monitors) that sample per cycle and must account for the
// skipped stretch analytically.
type FastForwardHook func(from, to uint64)

// Idler is implemented by components whose Eval *and* Commit are
// complete no-ops while Idle() reports true — no Set calls, no state
// writes, no side effects. The kernel then skips both calls for the
// cycle, per shard, saving the call and the register-dirtying work.
// Idle is checked once at the start of each Eval phase and the verdict
// is reused for the matching Commit phase, so a component whose Commit
// can be armed by an ordered-tail Eval (an NI accepting host sends) must
// NOT implement Idler.
type Idler interface {
	Idle() bool
}

// EnableFastForward arms fast-forward with the platform's hyper-period
// (cycles are only ever skipped in whole multiples of it) and a settle
// window (cycles of forced cycle-accurate execution after the last
// non-quiet scan). Panics on a zero period. A settle below two periods
// is raised to that — the catch-up hooks need one fully-quiescent
// period on record before any skip.
func (s *Simulator) EnableFastForward(period, settle uint64) {
	if period == 0 {
		panic("sim: fast-forward period must be positive")
	}
	if settle < 2*period {
		settle = 2 * period
	}
	s.ffPeriod, s.ffSettle = period, settle
}

// DisableFastForward pins the simulator back to cycle-accurate
// execution (used when a per-cycle observer like a VCD recorder is
// attached).
func (s *Simulator) DisableFastForward() { s.ffPeriod = 0 }

// FastForwardEnabled reports whether fast-forward is armed.
func (s *Simulator) FastForwardEnabled() bool { return s.ffPeriod > 0 }

// SkippedCycles returns the number of cycles fast-forward skipped so
// far. They are included in Cycle() — a skipped cycle is a completed
// cycle whose outcome was determined analytically.
func (s *Simulator) SkippedCycles() uint64 { return s.ffSkipped }

// AddQuiescer registers a standalone quiescence gate. Like components,
// gates are default-deny: every registered gate must report Quiet for a
// skip to happen.
func (s *Simulator) AddQuiescer(g QuiescenceFunc) {
	s.gates = append(s.gates, g)
}

// AddFastForwardHook registers a catch-up hook run after every skip, in
// registration order, on the stepping goroutine.
func (s *Simulator) AddFastForwardHook(h FastForwardHook) {
	s.ffHooks = append(s.ffHooks, h)
}

// ffScan re-evaluates quiescence at cycle `now`, maintaining the busy
// bookkeeping. The common cases stay cheap: while the platform is busy,
// only the cached culprit is re-asked until it goes quiet; a full scan
// runs only on a busy→quiet transition (and its verdict is then reused
// until the horizon, since a fully quiescent platform cannot wake
// itself up before it).
func (s *Simulator) ffScan(now uint64) {
	if s.ffBusy != nil {
		if q := s.ffBusy(now); !q.Quiet {
			s.ffLastBusy = now
			return
		}
		s.ffBusy = nil
	}
	s.ffQuiet, s.ffHorizon = false, 0
	if s.nonQuiescers > 0 {
		// Default-deny: some component cannot prove inertness.
		s.ffLastBusy = now
		return
	}
	var horizon uint64
	note := func(q Quiescence) bool {
		if !q.Quiet {
			return false
		}
		if q.Until != 0 && q.Until <= now {
			// "May act now or earlier" — treat as busy.
			return false
		}
		if q.Until != 0 && (horizon == 0 || q.Until < horizon) {
			horizon = q.Until
		}
		return true
	}
	// Ordered tail first (traffic endpoints and injectors are the usual
	// culprits), then gates, then the parallel set.
	for _, c := range s.ordered {
		qc := c.(Quiescer)
		if !note(qc.Quiescence(now)) {
			s.ffBusy, s.ffLastBusy = qc.Quiescence, now
			return
		}
	}
	for _, g := range s.gates {
		if !note(g(now)) {
			s.ffBusy, s.ffLastBusy = g, now
			return
		}
	}
	for i := range s.components {
		q := s.quiescers[i]
		if q == nil {
			s.ffLastBusy = now
			return
		}
		if !note(q.Quiescence(now)) {
			s.ffBusy, s.ffLastBusy = q.Quiescence, now
			return
		}
	}
	s.ffQuiet, s.ffHorizon = true, horizon
}

// tryFastForward skips as many cycles as quiescence allows, at most
// budget, and returns the count (0 = step normally). Called only from
// Run, on the stepping goroutine.
func (s *Simulator) tryFastForward(budget uint64) uint64 {
	now := s.cycle
	if !s.ffQuiet || (s.ffHorizon != 0 && now >= s.ffHorizon) {
		s.ffScan(now)
	}
	if !s.ffQuiet || now < s.ffLastBusy+s.ffSettle {
		return 0
	}
	limit := budget
	if s.ffHorizon != 0 && s.ffHorizon-now < limit {
		limit = s.ffHorizon - now
	}
	skip := limit - limit%s.ffPeriod
	if skip == 0 {
		return 0
	}
	s.cycle += skip
	s.ffSkipped += skip
	for _, f := range s.forwarders {
		f.OnFastForward(now, s.cycle)
	}
	for _, h := range s.ffHooks {
		h(now, s.cycle)
	}
	return skip
}
