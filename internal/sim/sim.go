// Package sim provides a synchronous, two-phase, cycle-accurate simulation
// kernel used by all hardware models in this repository.
//
// The kernel models a single clock domain the way synthesizable RTL behaves:
// every component computes its next state from the *current* values of all
// registers (the Eval phase), and only afterwards is all state advanced at
// once (the Commit phase), exactly like flip-flops latching on a clock edge.
// Because Eval never observes a value written in the same cycle, the result
// is independent of component evaluation order and therefore deterministic.
//
// That order-independence is also what makes the Eval phase embarrassingly
// parallel: NewWithOptions shards components and registers across a
// persistent worker pool, with a barrier between the Eval, Commit and
// register-commit phases of every Step, and the result stays bit-identical
// to the sequential kernel. Components that deliberately break the
// order-independence contract — traffic endpoints that drain NI queues,
// fault injectors that override pending wire values — register through
// AddOrdered instead of Add and run sequentially, in registration order,
// after the parallel set in both phases. Probes and Stop handling always
// stay sequential on the stepping goroutine.
package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Component is a piece of synchronous hardware. Eval computes next state
// from current state; Commit latches it. Eval must not observe any state
// written during the same Eval phase (use Reg for all inter-component
// signals to get this for free).
type Component interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Eval computes the next state for the current cycle.
	Eval(cycle uint64)
	// Commit latches the state computed by Eval.
	Commit()
}

// Reg is a single-cycle register (a bank of flip-flops) holding a value of
// type T. Get returns the currently latched value; Set schedules the value
// to appear after the next Commit. A Reg must be committed exactly once per
// cycle, which the Simulator does for registers created via NewReg.
type Reg[T any] struct {
	cur, next T
	dirty     bool
}

// NewReg returns a register initialized to v, registered with s so that it
// is committed automatically every cycle.
func NewReg[T any](s *Simulator, v T) *Reg[T] {
	r := &Reg[T]{cur: v, next: v}
	s.addReg(r)
	return r
}

// Get returns the currently latched value.
func (r *Reg[T]) Get() T { return r.cur }

// Set schedules v to become visible after the next clock edge.
func (r *Reg[T]) Set(v T) {
	r.next = v
	r.dirty = true
}

// Peek returns the pending next value if one was Set this cycle, else the
// current value. Intended for testing and tracing only.
func (r *Reg[T]) Peek() T {
	if r.dirty {
		return r.next
	}
	return r.cur
}

func (r *Reg[T]) commit() {
	if r.dirty {
		r.cur = r.next
		r.dirty = false
	}
}

// committer is the untyped view of a register used by the simulator.
type committer interface{ commit() }

// Probe is called after every Commit with the cycle number that just
// completed. Probes observe fully settled state.
type Probe func(cycle uint64)

// Simulator owns the clock, the component list, and all registers.
type Simulator struct {
	components []Component
	ordered    []Component
	regs       []committer
	probes     []Probe
	cycle      uint64

	workers int
	pool    *workerPool

	// Cached interface views of the parallel set, index-aligned with
	// components: idlers[i] is non-nil iff components[i] implements
	// Idler, likewise quiescers[i]. idleSkip[i] records the Idle()
	// verdict taken at the start of the Eval phase so the Commit phase
	// skips the exact same set.
	idlers    []Idler
	idleSkip  []bool
	nIdlers   int
	quiescers []Quiescer

	// Fast-forward state (see fastforward.go). nonQuiescers counts
	// registered components — parallel and ordered — that do not
	// implement Quiescer; any such component pins the simulator to
	// cycle-accurate execution (default-deny).
	nonQuiescers int
	gates        []QuiescenceFunc
	forwarders   []FastForwarder
	ffHooks      []FastForwardHook
	ffPeriod     uint64
	ffSettle     uint64
	ffLastBusy   uint64
	ffSkipped    uint64
	ffQuiet      bool
	ffHorizon    uint64
	ffBusy       func(uint64) Quiescence

	stopMu     sync.Mutex
	stopped    bool
	stopReason string
}

// New returns an empty sequential simulator at cycle 0. Use
// NewWithOptions to enable the parallel kernel.
func New() *Simulator {
	return NewWithOptions(Options{Workers: 1})
}

// NewWithOptions returns an empty simulator at cycle 0 with the given
// execution options. See Options.Workers for the parallelism knob.
func NewWithOptions(o Options) *Simulator {
	return &Simulator{workers: resolveWorkers(o.Workers)}
}

// Add registers a component with the simulator. Components added this way
// may be evaluated concurrently: their Eval must only read foreign state
// through Reg.Get and write through Regs (or plain state) they own, so
// that the result is independent of evaluation order.
func (s *Simulator) Add(c Component) {
	s.components = append(s.components, c)
	idl, _ := c.(Idler)
	s.idlers = append(s.idlers, idl)
	s.idleSkip = append(s.idleSkip, false)
	if idl != nil {
		s.nIdlers++
	}
	q, _ := c.(Quiescer)
	s.quiescers = append(s.quiescers, q)
	if q == nil {
		s.nonQuiescers++
	}
	if f, ok := c.(FastForwarder); ok {
		s.forwarders = append(s.forwarders, f)
	}
	s.ffQuiet = false
}

// AddOrdered registers a component that depends on evaluation order:
// its Eval reads or writes state owned by other components (a traffic
// endpoint draining an NI queue, a fault injector overriding pending
// wire values via Peek/Set). Ordered components run sequentially on the
// stepping goroutine, in registration order, after all Add'ed
// components have finished each phase — the same position a component
// added last held under the sequential kernel.
func (s *Simulator) AddOrdered(c Component) {
	s.ordered = append(s.ordered, c)
	if _, ok := c.(Quiescer); !ok {
		s.nonQuiescers++
	}
	if f, ok := c.(FastForwarder); ok {
		s.forwarders = append(s.forwarders, f)
	}
	s.ffQuiet = false
}

func (s *Simulator) addReg(r committer) {
	s.regs = append(s.regs, r)
}

// AddProbe registers a probe run after each cycle's commit phase.
func (s *Simulator) AddProbe(p Probe) {
	s.probes = append(s.probes, p)
}

// Cycle returns the number of fully completed cycles.
func (s *Simulator) Cycle() uint64 { return s.cycle }

// Stop requests that the simulation halt after the current cycle completes.
// It is safe to call from concurrently evaluating components; the first
// caller's reason is retained.
func (s *Simulator) Stop(reason string) {
	s.stopMu.Lock()
	defer s.stopMu.Unlock()
	if !s.stopped {
		s.stopped = true
		s.stopReason = reason
	}
}

// Stopped reports whether Stop has been called, and why.
func (s *Simulator) Stopped() (bool, string) {
	s.stopMu.Lock()
	defer s.stopMu.Unlock()
	return s.stopped, s.stopReason
}

func (s *Simulator) halted() bool {
	s.stopMu.Lock()
	defer s.stopMu.Unlock()
	return s.stopped
}

// Step advances the simulation by exactly one clock cycle: Eval of every
// component (parallel set, then ordered tail), Commit likewise, then the
// register commit, then the probes. Each phase finishes completely — a
// barrier on the worker pool when the phase ran parallel — before the
// next begins.
func (s *Simulator) Step() {
	cycle := s.cycle
	// Platforms with no Idler components (the common case for short
	// links) take the plain loops: no per-component idler lookup, no
	// idleSkip bookkeeping, no closure escaping into the shard runner.
	par := s.parallel(len(s.components), minParallelComponents)
	switch {
	case s.nIdlers == 0 && par:
		s.runSharded(len(s.components), componentChunk, func(start, end int) {
			for _, c := range s.components[start:end] {
				c.Eval(cycle)
			}
		})
	case s.nIdlers == 0:
		for _, c := range s.components {
			c.Eval(cycle)
		}
	case par:
		s.runSharded(len(s.components), componentChunk, func(start, end int) {
			s.evalIdleAware(cycle, start, end)
		})
	default:
		s.evalIdleAware(cycle, 0, len(s.components))
	}
	for _, c := range s.ordered {
		c.Eval(cycle)
	}

	switch {
	case s.nIdlers == 0 && par:
		s.runSharded(len(s.components), componentChunk, func(start, end int) {
			for _, c := range s.components[start:end] {
				c.Commit()
			}
		})
	case s.nIdlers == 0:
		for _, c := range s.components {
			c.Commit()
		}
	case par:
		s.runSharded(len(s.components), componentChunk, s.commitIdleAware)
	default:
		s.commitIdleAware(0, len(s.components))
	}
	for _, c := range s.ordered {
		c.Commit()
	}

	if s.parallel(len(s.regs), minParallelRegs) {
		s.runSharded(len(s.regs), regChunk, func(start, end int) {
			for _, r := range s.regs[start:end] {
				r.commit()
			}
		})
	} else {
		for _, r := range s.regs {
			r.commit()
		}
	}
	s.cycle++
	for _, p := range s.probes {
		p(s.cycle)
	}
}

// evalIdleAware is the Eval shard body for platforms with Idler
// components: an idle component's Eval is skipped and the verdict is
// recorded so commitIdleAware skips the exact same set.
func (s *Simulator) evalIdleAware(cycle uint64, start, end int) {
	for i, c := range s.components[start:end] {
		if idl := s.idlers[start+i]; idl != nil {
			if idl.Idle() {
				s.idleSkip[start+i] = true
				continue
			}
			s.idleSkip[start+i] = false
		}
		c.Eval(cycle)
	}
}

// commitIdleAware mirrors evalIdleAware for the Commit phase. idleSkip
// entries of non-Idler components are never written and stay false.
func (s *Simulator) commitIdleAware(start, end int) {
	for i, c := range s.components[start:end] {
		if s.idleSkip[start+i] {
			continue
		}
		c.Commit()
	}
}

// Run advances the simulation by n cycles or until Stop is called,
// whichever comes first, and returns the number of cycles executed.
// Cycles skipped by fast-forward (see EnableFastForward) count as
// executed. Step and RunUntil never fast-forward; only Run does.
func (s *Simulator) Run(n uint64) uint64 {
	// Host-side state may have changed since the last Run (submissions,
	// set-up requests), so any cached quiescence verdict is stale.
	s.ffQuiet = false
	var done uint64
	for done < n && !s.halted() {
		if s.ffPeriod > 0 {
			if skip := s.tryFastForward(n - done); skip > 0 {
				done += skip
				continue
			}
		}
		s.Step()
		done++
	}
	return done
}

// RunUntil steps the simulation until cond returns true (checked after each
// cycle) or the cycle budget is exhausted. It returns the cycle at which the
// condition first held and true, or the current cycle and false on timeout.
func (s *Simulator) RunUntil(cond func() bool, budget uint64) (uint64, bool) {
	for i := uint64(0); i < budget; i++ {
		if s.halted() {
			return s.cycle, false
		}
		s.Step()
		if cond() {
			return s.cycle, true
		}
	}
	return s.cycle, cond()
}

// ComponentNames returns the sorted names of all registered components
// (parallel set and ordered tail), useful for debugging platform assembly.
func (s *Simulator) ComponentNames() []string {
	names := make([]string, 0, len(s.components)+len(s.ordered))
	for _, c := range s.components {
		names = append(names, c.Name())
	}
	for _, c := range s.ordered {
		names = append(names, c.Name())
	}
	sort.Strings(names)
	return names
}

// Func wraps plain functions as a Component, for probes and test stimuli
// that need to participate in the Eval/Commit protocol.
type Func struct {
	Label    string
	OnEval   func(cycle uint64)
	OnCommit func()
}

// Name implements Component.
func (f *Func) Name() string { return f.Label }

// Eval implements Component.
func (f *Func) Eval(cycle uint64) {
	if f.OnEval != nil {
		f.OnEval(cycle)
	}
}

// Commit implements Component.
func (f *Func) Commit() {
	if f.OnCommit != nil {
		f.OnCommit()
	}
}

// String renders a short simulator status line.
func (s *Simulator) String() string {
	return fmt.Sprintf("sim{cycle=%d components=%d+%d regs=%d workers=%d}",
		s.cycle, len(s.components), len(s.ordered), len(s.regs), s.workers)
}
