package sim

import (
	"runtime"
	"testing"
)

// quietComp is a component that is always quiescent: its Eval counts
// invocations (so tests can see exactly which cycles ran for real) but
// changes no simulated state.
type quietComp struct {
	evals uint64
	until uint64
}

func (q *quietComp) Name() string      { return "quiet" }
func (q *quietComp) Eval(cycle uint64) { q.evals++ }
func (q *quietComp) Commit()           {}
func (q *quietComp) Quiescence(now uint64) Quiescence {
	return Quiescence{Quiet: true, Until: q.until}
}

// tickComp acts exactly once, at cycle `at`, and is quiet otherwise with
// a precise Until bound.
type tickComp struct {
	at    uint64
	fired uint64
}

func (t *tickComp) Name() string { return "tick" }
func (t *tickComp) Eval(cycle uint64) {
	if cycle == t.at {
		t.fired++
	}
}
func (t *tickComp) Commit() {}
func (t *tickComp) Quiescence(now uint64) Quiescence {
	if now <= t.at {
		return Quiescence{Quiet: true, Until: t.at}
	}
	return Quiescence{Quiet: true}
}

// mute is a component with no Quiescer — its presence must pin the
// simulator to cycle-accurate execution.
type mute struct{}

func (mute) Name() string      { return "mute" }
func (mute) Eval(cycle uint64) {}
func (mute) Commit()           {}

func TestFastForwardSkipsQuiescentStretch(t *testing.T) {
	s := New()
	q := &quietComp{}
	s.Add(q)
	const period, settle = 16, 64
	s.EnableFastForward(period, settle)
	const n = 1000
	if got := s.Run(n); got != n {
		t.Fatalf("Run returned %d, want %d", got, n)
	}
	if s.Cycle() != n {
		t.Fatalf("Cycle() = %d, want %d", s.Cycle(), n)
	}
	// Cycles 0..settle-1 run for real; at cycle `settle` the largest
	// period-multiple within the remaining budget is skipped; the
	// sub-period remainder runs for real.
	wantSkip := uint64((n - settle) / period * period)
	if s.SkippedCycles() != wantSkip {
		t.Fatalf("SkippedCycles = %d, want %d", s.SkippedCycles(), wantSkip)
	}
	if q.evals != n-wantSkip {
		t.Fatalf("quiet component evaluated %d times, want %d", q.evals, n-wantSkip)
	}
}

func TestFastForwardHonorsUntilHorizon(t *testing.T) {
	const period, settle = 8, 16
	const n = 4000
	const at = 2500

	run := func(ff bool) (*tickComp, uint64) {
		s := New()
		tc := &tickComp{at: at}
		s.Add(tc)
		if ff {
			s.EnableFastForward(period, settle)
		}
		s.Run(n)
		return tc, s.Cycle()
	}

	ref, refCycle := run(false)
	got, gotCycle := run(true)
	if refCycle != gotCycle {
		t.Fatalf("final cycle differs: ff=%d ref=%d", gotCycle, refCycle)
	}
	if got.fired != ref.fired || got.fired != 1 {
		t.Fatalf("tick fired %d times under fast-forward, %d without (want 1)", got.fired, ref.fired)
	}
}

func TestFastForwardDefaultDeny(t *testing.T) {
	s := New()
	s.Add(&quietComp{})
	s.Add(mute{})
	s.EnableFastForward(8, 16)
	s.Run(500)
	if s.SkippedCycles() != 0 {
		t.Fatalf("skipped %d cycles with a non-Quiescer component registered", s.SkippedCycles())
	}
}

func TestFastForwardOrderedDefaultDeny(t *testing.T) {
	s := New()
	s.Add(&quietComp{})
	s.AddOrdered(mute{})
	s.EnableFastForward(8, 16)
	s.Run(500)
	if s.SkippedCycles() != 0 {
		t.Fatalf("skipped %d cycles with a non-Quiescer ordered component", s.SkippedCycles())
	}
}

func TestFastForwardGateDeny(t *testing.T) {
	s := New()
	s.Add(&quietComp{})
	quiet := false
	s.AddQuiescer(func(now uint64) Quiescence { return Quiescence{Quiet: quiet} })
	s.EnableFastForward(8, 16)
	s.Run(500)
	if s.SkippedCycles() != 0 {
		t.Fatalf("skipped %d cycles while the gate reported busy", s.SkippedCycles())
	}
	quiet = true
	s.Run(500)
	if s.SkippedCycles() == 0 {
		t.Fatal("no cycles skipped after the gate went quiet")
	}
}

func TestFastForwardHooksObserveSkip(t *testing.T) {
	s := New()
	s.Add(&quietComp{})
	var hookFrom, hookTo uint64
	s.AddFastForwardHook(func(from, to uint64) { hookFrom, hookTo = from, to })
	const period, settle = 16, 32
	s.EnableFastForward(period, settle)
	const n = 1000
	s.Run(n)
	skip := s.SkippedCycles()
	if skip == 0 {
		t.Fatal("expected a skip")
	}
	if hookFrom != settle || hookTo != settle+skip {
		t.Fatalf("hook saw [%d,%d), want [%d,%d)", hookFrom, hookTo, settle, uint64(settle)+skip)
	}
	if hookTo-hookFrom != skip {
		t.Fatalf("hook span %d != skipped %d", hookTo-hookFrom, skip)
	}
}

func TestFastForwardNeverInStepOrRunUntil(t *testing.T) {
	s := New()
	q := &quietComp{}
	s.Add(q)
	s.EnableFastForward(8, 16)
	for i := 0; i < 200; i++ {
		s.Step()
	}
	s.RunUntil(func() bool { return false }, 200)
	if s.SkippedCycles() != 0 {
		t.Fatalf("Step/RunUntil skipped %d cycles", s.SkippedCycles())
	}
	if q.evals != 400 {
		t.Fatalf("evals = %d, want 400", q.evals)
	}
}

func TestFastForwardSettleRestartsAfterActivity(t *testing.T) {
	// A gate that is busy through cycle 99 forces the settle window to
	// restart from the last busy scan, not from cycle 0.
	s := New()
	s.Add(&quietComp{})
	const busyThrough = 99
	s.AddQuiescer(func(now uint64) Quiescence {
		return Quiescence{Quiet: now > busyThrough}
	})
	const period, settle = 8, 40
	s.EnableFastForward(period, settle)
	const n = 1000
	s.Run(n)
	// Last busy scan is at cycle 99; first skip at 99+settle.
	wantSkip := uint64((n - busyThrough - settle) / period * period)
	if s.SkippedCycles() != wantSkip {
		t.Fatalf("SkippedCycles = %d, want %d", s.SkippedCycles(), wantSkip)
	}
}

// lazyComp counts Evals/Commits and implements Idler.
type lazyComp struct {
	idle           bool
	evals, commits int
}

func (l *lazyComp) Name() string      { return "lazy" }
func (l *lazyComp) Eval(cycle uint64) { l.evals++ }
func (l *lazyComp) Commit()           { l.commits++ }
func (l *lazyComp) Idle() bool        { return l.idle }

func TestIdlerSkipsEvalAndCommit(t *testing.T) {
	s := New()
	l := &lazyComp{idle: true}
	s.Add(l)
	busy := &quietComp{}
	s.Add(busy)
	s.Run(25)
	if l.evals != 0 || l.commits != 0 {
		t.Fatalf("idle component ran: %d evals, %d commits", l.evals, l.commits)
	}
	if busy.evals != 25 {
		t.Fatalf("non-idler evaluated %d times, want 25", busy.evals)
	}
	l.idle = false
	s.Run(10)
	if l.evals != 10 || l.commits != 10 {
		t.Fatalf("woken component ran %d evals, %d commits, want 10 each", l.evals, l.commits)
	}
}

func TestIdlerSkipsUnderParallelKernel(t *testing.T) {
	s := NewWithOptions(Options{Workers: runtime.NumCPU()})
	defer s.Shutdown()
	const n = 200 // well above minParallelComponents
	comps := make([]*lazyComp, n)
	for i := range comps {
		comps[i] = &lazyComp{idle: i%2 == 0}
		s.Add(comps[i])
	}
	s.Run(30)
	for i, l := range comps {
		want := 30
		if i%2 == 0 {
			want = 0
		}
		if l.evals != want || l.commits != want {
			t.Fatalf("component %d: %d evals, %d commits, want %d", i, l.evals, l.commits, want)
		}
	}
}
