package conformance

// Deterministic randomized scenarios: each seed expands — through the
// repository's own seeded RNG — into a platform shape, a connection
// set with optional multicast and churn, and a traffic schedule. The
// runner executes the scenario with the invariant checkers attached and
// performs the sim-vs-model differential checks: link occupancy must
// match the model bit for bit, single-path traversal latency must equal
// the closed-form constant exactly, end-to-end latency must stay under
// the scheduling bound, and saturated connections must attain the
// reserved bandwidth within the model's ramp slack. The whole run folds
// into a fingerprint, so executing one scenario under different kernel
// worker counts must produce bit-identical results.

import (
	"fmt"

	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/sim"
	"daelite/internal/telemetry"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

// connPlan is one planned connection of a scenario.
type connPlan struct {
	src   topology.NodeID
	dsts  []topology.NodeID // len 1: unicast; more: multicast
	slots int
	rate  float64 // words/cycle offered; 0 saturates the reservation
	close bool    // churn: closed halfway through the run
}

// Scenario is one generated conformance scenario.
type Scenario struct {
	Seed          uint64
	Width, Height int
	Wheel         int
	Cycles        uint64
	Plans         []connPlan
	FaultLink     bool // kill one used link mid-run and repair around it
}

// String summarizes the scenario for reports.
func (sc *Scenario) String() string {
	mc, churn := 0, 0
	for _, pl := range sc.Plans {
		if len(pl.dsts) > 1 {
			mc++
		}
		if pl.close {
			churn++
		}
	}
	return fmt.Sprintf("%dx%d wheel=%d conns=%d mcast=%d churn=%d fault=%v cycles=%d",
		sc.Width, sc.Height, sc.Wheel, len(sc.Plans), mc, churn, sc.FaultLink, sc.Cycles)
}

// Generate expands a seed into a scenario. The expansion only consumes
// the seeded RNG, so a seed fully determines the scenario.
func Generate(seed uint64) *Scenario {
	rng := sim.NewRNG(seed)
	sc := &Scenario{
		Seed:   seed,
		Width:  2 + rng.Intn(3),
		Height: 2 + rng.Intn(3),
		Wheel:  []int{8, 16, 32}[rng.Intn(3)],
		Cycles: uint64(2500 + 500*rng.Intn(3)),
	}
	// Plans address NIs by flat index; Run resolves them on the mesh.
	n := sc.Width * sc.Height
	pick := func() int { return rng.Intn(n) }
	nconns := 2 + rng.Intn(3)
	for i := 0; i < nconns; i++ {
		src := pick()
		dst := pick()
		for dst == src {
			dst = pick()
		}
		pl := connPlan{
			src:   topology.NodeID(src), // NI index; resolved at build time
			dsts:  []topology.NodeID{topology.NodeID(dst)},
			slots: 1 + rng.Intn(2),
			rate:  []float64{0, 0.02, 0.01}[rng.Intn(3)],
		}
		if i > 0 && rng.Intn(4) == 0 {
			pl.close = true
		}
		sc.Plans = append(sc.Plans, pl)
	}
	if n >= 4 && rng.Intn(2) == 0 {
		src := pick()
		var dsts []topology.NodeID
		seen := map[int]bool{src: true}
		for len(dsts) < 2 {
			d := pick()
			if seen[d] {
				continue
			}
			seen[d] = true
			dsts = append(dsts, topology.NodeID(d))
		}
		sc.Plans = append(sc.Plans, connPlan{
			src:   topology.NodeID(src),
			dsts:  dsts,
			slots: 1,
			rate:  0.02,
		})
	}
	if rng.Intn(4) == 0 {
		sc.FaultLink = true
	}
	return sc
}

// Result is the outcome of one scenario run.
type Result struct {
	Scenario *Scenario
	Workers  int
	// Fingerprint folds every NI output flit, every delivery count and
	// the checker verdicts — the bit-exactness witness across worker
	// counts.
	Fingerprint uint64
	// Violations is the checkers' total violation count (zero for a
	// healthy platform).
	Violations uint64
	// Opened counts connections that were actually admitted.
	Opened int
	// Delivered sums words delivered to all sinks.
	Delivered uint64
	// Skipped counts fast-forwarded cycles (0 unless the run used
	// RunFastForward). Deliberately outside the fingerprint: a
	// fast-forwarded run must fingerprint identically to an accurate one.
	Skipped uint64
	// Failures lists differential-check failures (empty on pass).
	Failures []string
}

// Passed reports whether the run was violation- and divergence-free.
func (r *Result) Passed() bool { return r.Violations == 0 && len(r.Failures) == 0 }

type runConn struct {
	plan  connPlan
	conn  *core.Connection
	srcs  []*traffic.Source
	sinks []*traffic.Sink
}

// Run executes a scenario on a fresh platform with the given kernel
// worker count (0 selects GOMAXPROCS) and returns the measured result.
func Run(sc *Scenario, workers int) (*Result, error) {
	return run(sc, workers, false)
}

// RunFastForward executes a scenario with model-guided fast-forwarding
// armed. The result — fingerprint, verdicts, deliveries — must be
// bit-identical to Run's; only Skipped differs.
func RunFastForward(sc *Scenario, workers int) (*Result, error) {
	return run(sc, workers, true)
}

func run(sc *Scenario, workers int, ff bool) (*Result, error) {
	res := &Result{Scenario: sc, Workers: workers}
	params := core.DefaultParams()
	params.Wheel = sc.Wheel
	params.Workers = workers
	params.FastForward = ff
	spec := topology.MeshSpec{Width: sc.Width, Height: sc.Height, NIsPerRouter: 1}
	p, err := core.NewMeshPlatform(spec, params, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("conformance: build %dx%d: %w", sc.Width, sc.Height, err)
	}
	defer p.Sim.Shutdown()
	reg := telemetry.NewRegistry()
	ck := Attach(p, reg, Options{LineRate: true})
	model := NewModel(p)

	// The generator planned NI indices; resolve them on the real mesh.
	ni := func(idx topology.NodeID) topology.NodeID {
		i := int(idx)
		return p.Mesh.NI(i%sc.Width, (i/sc.Width)%sc.Height, 0)
	}

	var fp sim.Fingerprint
	for _, id := range p.Mesh.AllNIs {
		wire := p.NI(id).OutputWire()
		w := wire
		p.Sim.AddProbe(func(cycle uint64) {
			if f := w.Get(); f.Valid {
				fp = fp.Mix(uint64(f.Data))
				fp = fp.Mix(cycle)
			}
		})
	}

	var runs []*runConn
	for _, pl := range sc.Plans {
		cs := core.ConnectionSpec{Src: ni(pl.src), SlotsFwd: pl.slots}
		if len(pl.dsts) == 1 {
			cs.Dst = ni(pl.dsts[0])
		} else {
			for _, d := range pl.dsts {
				cs.Dsts = append(cs.Dsts, ni(d))
			}
		}
		c, err := p.Open(cs)
		if err != nil {
			continue // capacity exhausted: a valid draw, skip the plan
		}
		if err := p.AwaitOpen(c, 1_000_000); err != nil {
			return nil, fmt.Errorf("conformance: await open: %w", err)
		}
		runs = append(runs, &runConn{plan: pl, conn: c})
		res.Opened++
	}
	ck.Resync()

	// Traffic: saturating CBR on rate-0 plans (bandwidth differential),
	// light CBR otherwise (latency differential).
	for i, rc := range runs {
		rate := rc.plan.rate
		reserved := model.Bandwidth(rc.conn)
		if rate == 0 {
			rate = 1.0
		} else if rate > reserved/2 {
			rate = reserved / 2
		}
		src := traffic.NewSource(p.Sim, fmt.Sprintf("src%d", i), p.NI(rc.conn.Spec.Src),
			rc.conn.SrcChannel, traffic.SourceConfig{Pattern: traffic.CBR, Rate: rate, Seed: sc.Seed + uint64(i)})
		rc.srcs = append(rc.srcs, src)
		if rc.conn.Tree != nil {
			j := 0
			for _, d := range rc.conn.Spec.Dsts {
				rc.sinks = append(rc.sinks, traffic.NewSink(p.Sim,
					fmt.Sprintf("sink%d.%d", i, j), p.NI(d), rc.conn.DstChannels[d]))
				j++
			}
		} else {
			rc.sinks = append(rc.sinks, traffic.NewSink(p.Sim,
				fmt.Sprintf("sink%d", i), p.NI(rc.conn.Spec.Dst), rc.conn.DstChannel))
		}
	}

	// Optional fault: kill a link used by a connection at mid-run, let
	// the health monitor spot the stall and repair around it.
	var hmon *core.HealthMonitor
	faulted := false
	if sc.FaultLink {
		var victim topology.LinkID = -1
		for _, rc := range runs {
			if rc.plan.close || rc.conn.Fwd == nil {
				continue
			}
			path := rc.conn.Fwd.Paths[0].Path
			if len(path) >= 3 {
				victim = path[1] // a router-to-router hop, repairable
				break
			}
		}
		if victim >= 0 {
			at := p.Cycle() + sc.Cycles/3
			if _, err := fault.Attach(p, sc.Seed, fault.Fault{Kind: fault.LinkDown, Link: victim, From: at}); err != nil {
				return nil, fmt.Errorf("conformance: fault attach: %w", err)
			}
			hmon = core.NewHealthMonitor(p, 256)
			faulted = true
		}
	}

	// Run with churn: closing plans are torn down halfway through.
	half := sc.Cycles / 2
	runChunk := func(n uint64) error {
		end := p.Cycle() + n
		for p.Cycle() < end {
			step := uint64(256)
			if rest := end - p.Cycle(); rest < step {
				step = rest
			}
			p.Run(step)
			if hmon != nil && len(hmon.Stalled()) > 0 {
				repairs, err := p.RepairStalled(hmon, 1_000_000)
				if err != nil {
					// Deterministically unrepairable (no spare
					// capacity): keep running degraded.
					hmon = nil
				}
				// Repair closes the stalled connection and opens a
				// replacement with a fresh ID; follow the pointer so
				// traffic bookkeeping and the end-of-run differential
				// see the live connection, not the corpse.
				for _, r := range repairs {
					if r.Conn == nil {
						continue
					}
					for _, rc := range runs {
						if rc.conn.ID == r.OldID {
							rc.conn = r.Conn
						}
					}
				}
				ck.Resync()
			}
		}
		return nil
	}
	if err := runChunk(half); err != nil {
		return nil, err
	}
	for _, rc := range runs {
		if !rc.plan.close {
			continue
		}
		if err := p.Close(rc.conn); err != nil {
			return nil, fmt.Errorf("conformance: close: %w", err)
		}
	}
	if _, err := p.CompleteConfig(1_000_000); err != nil {
		return nil, fmt.Errorf("conformance: settle teardown: %w", err)
	}
	ck.Resync()
	if err := runChunk(sc.Cycles - half); err != nil {
		return nil, err
	}
	ck.CheckNow()

	// Differential checks against the model.
	fail := func(format string, args ...interface{}) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}
	conns := make([]*core.Connection, 0, len(runs))
	for _, rc := range runs {
		if rc.conn.State == core.Open {
			conns = append(conns, rc.conn)
		}
	}
	occ := model.LinkOccupancy(conns)
	for _, l := range p.Mesh.Links() {
		want := occ[l.ID]
		got := p.Alloc.LinkOccupancy(l.ID)
		if got.Bits != want.Bits {
			fail("link %d occupancy: allocator %#x vs model %#x", l.ID, got.Bits, want.Bits)
		}
	}
	w := uint64(params.SlotWords)
	for _, rc := range runs {
		c := rc.conn
		for _, sink := range rc.sinks {
			res.Delivered += sink.Received()
		}
		// Churned or repaired connections measured across epochs; the
		// per-word differential only applies to undisturbed ones.
		if rc.plan.close || faulted || c.State != core.Open {
			continue
		}
		if c.Tree == nil {
			lat := model.UnicastLatency(c)
			st := rc.sinks[0].Stats()
			if st.Count == 0 {
				fail("conn %d: no deliveries", c.ID)
				continue
			}
			if len(c.Fwd.Paths) == 1 {
				if st.MinLat != lat.NetMin || st.MaxLat != lat.NetMax {
					fail("conn %d: net latency [%d,%d], model law says exactly %d",
						c.ID, st.MinLat, st.MaxLat, lat.NetMin)
				}
			} else if st.MinLat < lat.NetMin || st.MaxLat > lat.NetMax {
				fail("conn %d: net latency [%d,%d] outside model [%d,%d]",
					c.ID, st.MinLat, st.MaxLat, lat.NetMin, lat.NetMax)
			}
			if rc.plan.rate > 0 {
				// Light offered load: end-to-end bound holds per word.
				bound := lat.E2EMax(w * uint64(params.Wheel))
				if got := rc.sinks[0].TotalStats().MaxLat; got > bound {
					fail("conn %d: e2e latency %d exceeds model bound %d", c.ID, got, bound)
				}
			}
		} else {
			for j, d := range c.Spec.Dsts {
				st := rc.sinks[j].Stats()
				if st.Count == 0 {
					fail("conn %d dst %d: no deliveries", c.ID, d)
					continue
				}
				net := model.MulticastNet(c, d)
				if st.MinLat != net || st.MaxLat != net {
					fail("conn %d dst %d: net latency [%d,%d], model law says exactly %d",
						c.ID, d, st.MinLat, st.MaxLat, net)
				}
			}
		}
		if rc.plan.rate == 0 {
			// Saturated: attained bandwidth must meet the reservation.
			expect := model.Bandwidth(c) * float64(sc.Cycles)
			slack := model.DeliverySlack(c)
			got := float64(rc.sinks[0].Received())
			if got < expect-slack || got > expect+slack {
				fail("conn %d: attained %v words, model %v±%v", c.ID, got, expect, slack)
			}
		}
	}
	res.Violations = ck.Violations()
	for _, v := range ck.Recorded() {
		fail("violation @%d %s: %s", v.Cycle, v.Check, v.Detail)
	}

	// Fold deliveries and verdicts into the fingerprint.
	fp = fp.Mix(res.Delivered)
	fp = fp.Mix(res.Violations)
	res.Fingerprint = fp.Sum()
	res.Skipped = p.Sim.SkippedCycles()
	return res, nil
}
