package conformance

// Online invariant checkers. A Checker attaches to a platform through
// the sim kernel's probe hook — the same zero-cost-when-detached
// mechanism the telemetry harvest and the stats monitor use: probes run
// sequentially on the stepping goroutine after each commit, so the
// checker reads settled state, adds no hardware, and an unattached
// platform pays nothing.
//
// Five invariants are watched:
//
//   - link contention-freedom: every payload flit observed on a link
//     must sit in a slot the model reserves there (per cycle);
//   - slot-table/crossbar consistency: every router and NI slot table
//     must equal the model's fold over the live connections, and the
//     allocator's occupancy words must equal the model's (sampled);
//   - credit conservation: per open unicast connection, source credits
//     plus words in flight plus queued and unreturned deliveries never
//     exceed the receive queue capacity (sampled);
//   - config-tree single-outstanding-request: the converging response
//     path never carries a response when no read is awaited (per
//     cycle);
//   - multicast line-rate consumption: a multicast destination NI never
//     drops words while its sink keeps up (sampled).
//
// Each violation increments a per-check telemetry counter
// (conformance_violations_total{check=...}) and emits a capped number
// of telemetry events, so detections surface in every exporter.

import (
	"fmt"

	"daelite/internal/configtree"
	"daelite/internal/core"
	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/slots"
	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/topology"
)

// Check names used in the telemetry label and violation records.
const (
	CheckContention = "contention"
	CheckTable      = "table"
	CheckOccupancy  = "occupancy"
	CheckCredit     = "credit"
	CheckConfigTree = "configtree"
	CheckMulticast  = "multicast"
)

// Options tune a Checker.
type Options struct {
	// SampleEvery is the cadence of the structural checks (tables,
	// occupancy, credits, drops) in cycles; <= 0 selects 64. The
	// per-cycle checks (wires, response path) always run every cycle.
	SampleEvery int
	// MaxEvents caps the telemetry events emitted for violations so a
	// hard failure cannot flood the registry; <= 0 selects 32.
	MaxEvents int
	// LineRate disables the multicast zero-drop check when false.
	LineRate bool
	// OnViolation, when set, is called for each recorded violation
	// (within the MaxEvents cap) from the checking probe on the
	// stepping goroutine — the flight recorder's dump trigger.
	OnViolation func(Violation)
}

// Violation is one recorded invariant failure.
type Violation struct {
	Cycle  uint64
	Check  string
	Detail string
}

// Checker is an attached set of online invariant checkers.
type Checker struct {
	p   *core.Platform
	m   *Model
	reg *telemetry.Registry
	opt Options

	counters map[string]*telemetry.Counter
	events   int

	// Cached expectation, rebuilt by Resync: per-link legal payload
	// masks for the per-cycle wire check.
	wires      []checkWire
	graceUntil uint64
	drain      uint64

	// Credit baselines, captured at Resync: lifetime counters may span
	// closed connections that reused the channel.
	bases map[int]*creditBase

	// Multicast drop baselines per destination NI.
	dropBase map[topology.NodeID]uint64

	// lastEpoch mirrors the allocator's occupancy epoch; any change means
	// the reservation set moved (open, close, repair) and the cached
	// expectation must be rebuilt before the per-cycle checks resume.
	lastEpoch uint64

	// resps watches each configuration region's reverse path: the
	// single-outstanding-read invariant holds per region (each tree has
	// its own unarbitrated response path and host module).
	resps []respWatch

	violations []Violation
	total      uint64
}

// respWatch pairs one region's configuration module with its root
// response wire for the per-cycle config-tree check.
type respWatch struct {
	mod             *configtree.Module
	resp            *sim.Reg[phit.Response]
	prevOutstanding bool
}

type checkWire struct {
	link topology.Link
	wire *sim.Reg[phit.Flit]
	occ  slots.Mask
}

type creditBase struct {
	tx, rx          uint64
	recv, delivered int
}

// Attach connects the checkers to a platform. reg receives the
// violation counters and events (the platform's own registry is a
// natural choice when telemetry is attached, but any registry works).
// Call Resync after every intentional reconfiguration — connection
// open, close or repair — to rebuild the expectation and re-arm the
// per-cycle checks after a short grace window.
func Attach(p *core.Platform, reg *telemetry.Registry, opt Options) *Checker {
	if opt.SampleEvery <= 0 {
		opt.SampleEvery = 64
	}
	if opt.MaxEvents <= 0 {
		opt.MaxEvents = 32
	}
	ck := &Checker{
		p:        p,
		m:        NewModel(p),
		reg:      reg,
		opt:      opt,
		counters: make(map[string]*telemetry.Counter),
		bases:    make(map[int]*creditBase),
		dropBase: make(map[topology.NodeID]uint64),
	}
	for _, name := range []string{CheckContention, CheckTable, CheckOccupancy, CheckCredit, CheckConfigTree, CheckMulticast} {
		ck.counters[name] = reg.Counter("conformance_violations_total", telemetry.L("check", name))
	}
	for _, l := range p.Mesh.Links() {
		var w *sim.Reg[phit.Flit]
		if r, ok := p.Routers[l.From]; ok {
			w = r.OutputWire(l.FromPort)
		} else {
			w = p.NIs[l.From].OutputWire()
		}
		ck.wires = append(ck.wires, checkWire{link: l, wire: w})
	}
	for reg, tree := range p.Trees {
		var resp *sim.Reg[phit.Response]
		if n, ok := p.NIs[tree.Root]; ok {
			resp = n.ResponseWire()
		} else if r, ok := p.Routers[tree.Root]; ok {
			resp = r.ResponseWire()
		}
		if resp != nil {
			ck.resps = append(ck.resps, respWatch{mod: p.Config.Region(reg), resp: resp})
		}
	}
	ck.Resync()
	every := uint64(opt.SampleEvery)
	p.Sim.AddProbe(func(cycle uint64) {
		ck.perCycle(cycle)
		if cycle%every == 0 && cycle >= ck.graceUntil {
			ck.structural(cycle)
		}
	})
	return ck
}

// Resync rebuilds the checker's expectation from the platform's live
// connections and re-arms every check: per-cycle checks resume after a
// grace window long enough for in-flight configuration and payload of
// the previous schedule to drain, and credit and drop baselines are
// recaptured. Call it after AwaitOpen, Close (once the tear-down has
// settled, e.g. via CompleteConfig) and Repair.
func (ck *Checker) Resync() {
	conns := ck.liveConns()
	occ := ck.m.LinkOccupancy(conns)
	for i := range ck.wires {
		mask, ok := occ[ck.wires[i].link.ID]
		if !ok {
			mask = slots.NewMask(ck.m.wheel)
		}
		ck.wires[i].occ = mask
	}
	ck.drain = uint64((ck.m.wheel + 8) * ck.m.slotWords)
	ck.graceUntil = ck.p.Cycle() + ck.p.ConfigSettleCycles() + ck.drain
	ck.lastEpoch = ck.p.Alloc.Epoch()
	ck.bases = make(map[int]*creditBase)
	for _, c := range conns {
		if c.State != core.Open || c.Tree != nil {
			continue
		}
		src, dst := ck.p.NI(c.Spec.Src), ck.p.NI(c.Spec.Dst)
		ck.bases[c.ID] = &creditBase{
			tx:        src.TxWords(c.SrcChannel),
			rx:        dst.RxWords(c.DstChannel),
			recv:      dst.RecvLen(c.DstChannel),
			delivered: dst.DeliveredCredits(c.DstChannel),
		}
	}
	ck.dropBase = make(map[topology.NodeID]uint64)
	for _, c := range conns {
		if c.Tree == nil {
			continue
		}
		for d := range c.Tree.DestDepth {
			ck.dropBase[d] = ck.p.NI(d).Dropped()
		}
	}
}

func (ck *Checker) liveConns() []*core.Connection {
	byID := ck.p.Connections()
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	// Deterministic order regardless of map iteration.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := make([]*core.Connection, 0, len(ids))
	for _, id := range ids {
		out = append(out, byID[id])
	}
	return out
}

// Violations returns the total violation count across all checks.
func (ck *Checker) Violations() uint64 { return ck.total }

// ViolationCount returns one check's violation count.
func (ck *Checker) ViolationCount(check string) uint64 {
	if c, ok := ck.counters[check]; ok {
		return c.Value()
	}
	return 0
}

// Recorded returns the recorded violations (capped at MaxEvents).
func (ck *Checker) Recorded() []Violation {
	out := make([]Violation, len(ck.violations))
	copy(out, ck.violations)
	return out
}

func (ck *Checker) violate(cycle uint64, check, format string, args ...interface{}) {
	ck.total++
	ck.counters[check].Inc()
	if ck.events >= ck.opt.MaxEvents {
		return
	}
	ck.events++
	detail := fmt.Sprintf(format, args...)
	v := Violation{Cycle: cycle, Check: check, Detail: detail}
	ck.violations = append(ck.violations, v)
	ck.reg.Emit(telemetry.Event{Cycle: cycle, Kind: "conformance_violation",
		Detail: check + ": " + detail})
	ck.p.Tracer().Point(tracing.SpanRef{}, "conformance_violation", check, detail, cycle)
	if ck.opt.OnViolation != nil {
		ck.opt.OnViolation(v)
	}
}

// perCycle runs the cheap wire-level checks every cycle.
func (ck *Checker) perCycle(cycle uint64) {
	if ep := ck.p.Alloc.Epoch(); ep != ck.lastEpoch {
		// The reservation set changed under us — an admission, release
		// or repair committed since the last resync. Rebuild the
		// expectation and let the grace window cover the transition.
		ck.Resync()
	}
	if ck.p.Config.Busy() {
		// Configuration words are still in flight — e.g. a multi-packet
		// tear-down draining through the region modules — so the
		// hardware legitimately lags the model. Keep the grace window
		// open until the last packet has settled and stale payload has
		// drained.
		ck.graceUntil = cycle + ck.p.ConfigSettleCycles() + ck.drain
	}
	slot := slots.SlotOfCycle(cycle, ck.m.slotWords, ck.m.wheel)
	if cycle >= ck.graceUntil {
		for i := range ck.wires {
			w := &ck.wires[i]
			if f := w.wire.Get(); f.Valid && !w.occ.Has(slot) {
				ck.violate(cycle, CheckContention,
					"payload on %s->%s in unreserved slot %d (ch=%d)",
					ck.p.Mesh.Node(w.link.From).Name, ck.p.Mesh.Node(w.link.To).Name,
					slot, f.Tag.Channel)
			}
		}
	}
	for i := range ck.resps {
		w := &ck.resps[i]
		out := w.mod.ReadOutstanding()
		if r := w.resp.Get(); r.Valid && !out && !w.prevOutstanding {
			ck.violate(cycle, CheckConfigTree,
				"region %d: response word %#02x with no read outstanding", i, r.Bits)
		}
		w.prevOutstanding = out
	}
}

// structural runs the sampled model-vs-allocator-vs-hardware checks.
// While configuration is in flight (a connection still opening, or
// packets queued in the host module) the hardware legitimately lags the
// allocator, so the pass waits for the next sample.
func (ck *Checker) structural(cycle uint64) {
	conns := ck.liveConns()
	if ck.p.Config.Busy() {
		return
	}
	for _, c := range conns {
		if c.State == core.Opening {
			return
		}
	}
	ck.checkOccupancy(cycle, conns)
	ck.checkRouterTables(cycle, conns)
	ck.checkNITables(cycle, conns)
	ck.checkCredits(cycle, conns)
	if ck.opt.LineRate {
		ck.checkMulticastDrops(cycle, conns)
	}
}

// checkOccupancy compares the model's fold with the allocator's
// occupancy words, link by link — the two independent derivations of
// the slot-alignment law must agree bit for bit.
func (ck *Checker) checkOccupancy(cycle uint64, conns []*core.Connection) {
	occ := ck.m.LinkOccupancy(conns)
	for _, l := range ck.p.Mesh.Links() {
		want, ok := occ[l.ID]
		if !ok {
			want = slots.NewMask(ck.m.wheel)
		}
		got := ck.p.Alloc.LinkOccupancy(l.ID)
		if got.Bits != want.Bits {
			ck.violate(cycle, CheckOccupancy,
				"link %s->%s: allocator %s vs model %s",
				ck.p.Mesh.Node(l.From).Name, ck.p.Mesh.Node(l.To).Name, got, want)
		}
	}
}

// checkRouterTables compares every router slot table with the model:
// reserved slots must select the predicted input, unreserved slots must
// be idle.
func (ck *Checker) checkRouterTables(cycle uint64, conns []*core.Connection) {
	type key struct {
		r    topology.NodeID
		out  int
		slot int
	}
	want := make(map[key]int)
	for _, e := range ck.m.RouterEntries(conns) {
		for _, s := range e.Mask.Slots() {
			want[key{e.Router, e.Out, s}] = e.In
		}
	}
	for _, id := range ck.p.Mesh.Nodes() {
		if id.Kind != topology.Router {
			continue
		}
		r := ck.p.Routers[id.ID]
		t := r.Table()
		for out := 0; out < t.NumOutputs(); out++ {
			for s := 0; s < ck.m.wheel; s++ {
				wantIn, reserved := want[key{id.ID, out, s}]
				if !reserved {
					wantIn = slots.NoInput
				}
				if got := t.Input(out, s); got != wantIn {
					ck.violate(cycle, CheckTable,
						"router %s out %d slot %d: input %d, model %d",
						id.Name, out, s, got, wantIn)
				}
			}
		}
	}
}

// checkNITables compares every NI slot table with the model's schedule.
func (ck *Checker) checkNITables(cycle uint64, conns []*core.Connection) {
	want := ck.m.NITables(conns)
	for _, id := range ck.p.Mesh.AllNIs {
		n := ck.p.NIs[id]
		sched, ok := want[id]
		if !ok {
			sched = &NISchedule{}
		}
		t := n.Table()
		for s := 0; s < ck.m.wheel; s++ {
			wantTX, wantRX := slots.NoChannel, slots.NoChannel
			if len(sched.Send) > 0 {
				wantTX, wantRX = sched.Send[s], sched.Recv[s]
			}
			if got := t.Entry(s).TX; got != wantTX {
				ck.violate(cycle, CheckTable,
					"ni %s slot %d: tx channel %d, model %d",
					ck.p.Mesh.Node(id).Name, s, got, wantTX)
			}
			if got := t.Entry(s).RX; got != wantRX {
				ck.violate(cycle, CheckTable,
					"ni %s slot %d: rx channel %d, model %d",
					ck.p.Mesh.Node(id).Name, s, got, wantRX)
			}
		}
	}
}

// checkCredits verifies end-to-end credit conservation for every open
// unicast connection: the source credit counter, the words in flight
// (lifetime tx minus rx since the baseline), the receive queue and the
// unreturned-delivery counter partition the receive queue capacity, so
// their sum never exceeds it; credits in flight only lower the sum.
func (ck *Checker) checkCredits(cycle uint64, conns []*core.Connection) {
	depth := ck.p.Params.RecvQueueDepth
	for _, c := range conns {
		if c.State != core.Open || c.Tree != nil {
			continue
		}
		base, ok := ck.bases[c.ID]
		if !ok {
			continue // opened since the last Resync; not yet armed
		}
		src, dst := ck.p.NI(c.Spec.Src), ck.p.NI(c.Spec.Dst)
		credit := src.Credit(c.SrcChannel)
		if credit > depth {
			ck.violate(cycle, CheckCredit,
				"conn %d: source credit %d exceeds queue capacity %d",
				c.ID, credit, depth)
			continue
		}
		inflight := int(src.TxWords(c.SrcChannel)-base.tx) - int(dst.RxWords(c.DstChannel)-base.rx)
		sum := credit + inflight +
			(dst.RecvLen(c.DstChannel) - base.recv) +
			(dst.DeliveredCredits(c.DstChannel) - base.delivered)
		if sum > depth {
			ck.violate(cycle, CheckCredit,
				"conn %d: credit sum %d exceeds queue capacity %d (credit=%d inflight=%d)",
				c.ID, sum, depth, credit, inflight)
		}
	}
}

// checkMulticastDrops verifies line-rate consumption at multicast
// destinations: without end-to-end flow control the sink must keep up,
// so the destination NI's drop counter may never grow.
func (ck *Checker) checkMulticastDrops(cycle uint64, conns []*core.Connection) {
	for _, c := range conns {
		if c.Tree == nil || c.State == core.Closed {
			continue
		}
		for d := range c.Tree.DestDepth {
			base, ok := ck.dropBase[d]
			if !ok {
				continue
			}
			if got := ck.p.NI(d).Dropped(); got > base {
				ck.violate(cycle, CheckMulticast,
					"multicast dst %s dropped %d words (consumer below line rate)",
					ck.p.Mesh.Node(d).Name, got-base)
				ck.dropBase[d] = got
			}
		}
	}
}

// CheckNow forces one structural pass at the current cycle regardless
// of the sampling cadence and grace window (the caller vouches the
// platform is quiescent).
func (ck *Checker) CheckNow() {
	ck.structural(ck.p.Cycle())
}
