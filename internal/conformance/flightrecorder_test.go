package conformance

// The flight-recorder end of the mutation smoke: plant the same seeded
// slot-table corruption the checkers are proven to catch, with a tracer
// and armed recorder riding along, and assert the violation trigger
// actually produces a dump whose contents name the violating cycle and
// link. A black box that does not open on a planted crash would not
// open on a real one.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/topology"
)

func TestFlightRecorderDumpsOnPlantedViolation(t *testing.T) {
	params := core.DefaultParams()
	params.Workers = 1
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1}, params, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Sim.Shutdown()

	tr := tracing.New(tracing.Options{})
	p.AttachTracer(tr)
	prefix := filepath.Join(t.TempDir(), "flight")
	rec := tracing.NewRecorder(tr, prefix)

	var caught []Violation
	reg := telemetry.NewRegistry()
	ck := Attach(p, reg, Options{SampleEvery: 32, OnViolation: func(v Violation) {
		caught = append(caught, v)
		if _, err := rec.Dump("conformance-" + v.Check); err != nil {
			t.Errorf("dump: %v", err)
		}
	}})

	c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(2, 2, 0), SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 1_000_000); err != nil {
		t.Fatal(err)
	}
	ck.Resync()
	p.Run(256)
	if ck.Violations() != 0 {
		t.Fatalf("healthy platform reported %d violations", ck.Violations())
	}

	// Plant the corruption the mutation smoke uses: clear a programmed
	// slot-table entry on the first router-owned hop.
	link := p.Mesh.Graph.Link(c.Fwd.Paths[0].Path[1])
	slot := p.Alloc.LinkOccupancy(link.ID).Slots()[0]
	if _, err := fault.Attach(p, 3, fault.Fault{
		Kind: fault.SlotTableFlip, Router: link.From, Out: link.FromPort,
		Slot: slot, From: p.Cycle() + 8,
	}); err != nil {
		t.Fatal(err)
	}
	p.Run(256)

	if len(caught) == 0 {
		t.Fatal("planted slot-table corruption triggered no OnViolation callback")
	}
	v := caught[0]

	// The recorder must have produced both dump files for the violating
	// check, exactly once despite repeated violations.
	nd := prefix + "-conformance-" + v.Check + ".ndjson"
	chrome := prefix + "-conformance-" + v.Check + ".trace.json"
	ndBytes, err := os.ReadFile(nd)
	if err != nil {
		t.Fatalf("flight dump missing: %v", err)
	}
	if _, err := os.ReadFile(chrome); err != nil {
		t.Fatalf("flight trace missing: %v", err)
	}

	// The dump must name what went wrong: a conformance_violation event
	// carrying the violating cycle and the corrupted link/slot detail.
	var seen bool
	for _, line := range strings.Split(strings.TrimSpace(string(ndBytes)), "\n") {
		var ev struct {
			Record string `json:"record"`
			Name   string `json:"name"`
			Cycle  uint64 `json:"cycle"`
			Detail string `json:"detail"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad dump line %q: %v", line, err)
		}
		if ev.Record != "trace_event" || ev.Name != "conformance_violation" {
			continue
		}
		seen = true
		if ev.Cycle != v.Cycle {
			t.Errorf("dump names cycle %d, violation was at %d", ev.Cycle, v.Cycle)
		}
		if ev.Detail != v.Detail {
			t.Errorf("dump detail %q != violation detail %q", ev.Detail, v.Detail)
		}
		from := p.Mesh.Node(link.From).Name
		if !strings.Contains(ev.Detail, from) {
			t.Errorf("dump detail %q does not name the corrupted router %s", ev.Detail, from)
		}
	}
	if !seen {
		t.Fatal("dump contains no conformance_violation event")
	}

	// Re-triggering the same reason must not clobber the first dump.
	before, err := os.Stat(nd)
	if err != nil {
		t.Fatal(err)
	}
	if paths, err := rec.Dump("conformance-" + v.Check); err != nil || paths != nil {
		t.Fatalf("second dump for the same reason: paths=%v err=%v", paths, err)
	}
	after, err := os.Stat(nd)
	if err != nil {
		t.Fatal(err)
	}
	if after.ModTime() != before.ModTime() || after.Size() != before.Size() {
		t.Error("second dump for the same reason rewrote the file")
	}
}
