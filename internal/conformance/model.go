// Package conformance is the repository's mechanical proof layer for the
// paper's TDM guarantees: an analytical reference model that predicts
// slot occupancy, latency bounds and attained bandwidth in closed form
// from the allocator's reservations and the topology alone; online
// invariant checkers attachable to any core.Platform through the
// existing probe hooks, reporting through the telemetry registry; and a
// deterministic randomized scenario generator that runs sim-vs-model
// differential checks plus a mutation smoke mode proving the checkers
// actually fire on corrupted state.
//
// The model never looks at simulation state. Everything it predicts
// follows from the slot-alignment law of the paper: a channel injected
// in slot s occupies slot (s + a_k) mod N on the k-th link of its path,
// where a_k is the cumulative slot advance of the preceding links (one
// per plain link, more for pipelined links). The checkers then compare
// three independent witnesses of that law — the model's fold over the
// live connections, the allocator's occupancy words, and the hardware
// slot tables and wires — and any disagreement is a conformance
// violation.
package conformance

import (
	"daelite/internal/alloc"
	"daelite/internal/core"
	"daelite/internal/slots"
	"daelite/internal/topology"
)

// Model is the analytical reference model. It is built from the
// platform's static shape (topology, wheel size, slot width, queue
// depth) and evaluated against a set of live connections; it holds no
// simulation state.
type Model struct {
	g         *topology.Graph
	wheel     int
	slotWords int
	recvDepth int
}

// NewModel builds the reference model for a platform's shape.
func NewModel(p *core.Platform) *Model {
	return &Model{
		g:         p.Mesh.Graph,
		wheel:     p.Params.Wheel,
		slotWords: p.Params.SlotWords,
		recvDepth: p.Params.RecvQueueDepth,
	}
}

// Wheel returns the TDM table size the model was built for.
func (m *Model) Wheel() int { return m.wheel }

// foldUnicast visits every (link, mask) reservation of a unicast
// allocation: the injection mask rotated up by the cumulative slot
// advance in front of each link.
func (m *Model) foldUnicast(u *alloc.Unicast, visit func(l topology.LinkID, mask slots.Mask)) {
	if u == nil {
		return
	}
	for _, pa := range u.Paths {
		off := 0
		for _, l := range pa.Path {
			visit(l, pa.InjectSlots.RotateUp(off))
			off += m.g.SlotAdvance(l)
		}
	}
}

// foldMulticast visits every (link, mask) reservation of a multicast
// tree: the shared injection mask rotated up by each edge's depth.
func (m *Model) foldMulticast(mc *alloc.Multicast, visit func(l topology.LinkID, mask slots.Mask)) {
	if mc == nil {
		return
	}
	for _, e := range mc.Edges {
		visit(e.Link, mc.InjectSlots.RotateUp(e.Depth))
	}
}

// LinkOccupancy folds the reservations of every non-closed connection
// into per-link slot masks — the model's prediction of the allocator's
// occupancy words and of where payload may legally appear on the wires.
func (m *Model) LinkOccupancy(conns []*core.Connection) map[topology.LinkID]slots.Mask {
	occ := make(map[topology.LinkID]slots.Mask)
	add := func(l topology.LinkID, mask slots.Mask) {
		cur, ok := occ[l]
		if !ok {
			cur = slots.NewMask(m.wheel)
		}
		occ[l] = cur.Union(mask)
	}
	for _, c := range conns {
		if c.State == core.Closed {
			continue
		}
		m.foldUnicast(c.Fwd, add)
		m.foldUnicast(c.Rev, add)
		m.foldMulticast(c.Tree, add)
	}
	return occ
}

// NISchedule is the model's prediction of one NI's slot table: the
// channel expected in each send and receive slot (slots.NoChannel where
// the table must be idle).
type NISchedule struct {
	Send, Recv []int
}

// NITables predicts every NI slot table from the live connections.
func (m *Model) NITables(conns []*core.Connection) map[topology.NodeID]*NISchedule {
	tables := make(map[topology.NodeID]*NISchedule)
	sched := func(n topology.NodeID) *NISchedule {
		t, ok := tables[n]
		if !ok {
			t = &NISchedule{Send: make([]int, m.wheel), Recv: make([]int, m.wheel)}
			for i := 0; i < m.wheel; i++ {
				t.Send[i], t.Recv[i] = slots.NoChannel, slots.NoChannel
			}
			tables[n] = t
		}
		return t
	}
	unicast := func(u *alloc.Unicast, srcCh, dstCh int) {
		if u == nil {
			return
		}
		for _, pa := range u.Paths {
			for _, s := range pa.InjectSlots.Slots() {
				sched(u.Src).Send[s] = srcCh
			}
			for _, s := range pa.DestSlots(m.g).Slots() {
				sched(u.Dst).Recv[s] = dstCh
			}
		}
	}
	for _, c := range conns {
		if c.State == core.Closed {
			continue
		}
		unicast(c.Fwd, c.SrcChannel, c.DstChannel)
		unicast(c.Rev, c.DstChannel, c.SrcChannel)
		if mc := c.Tree; mc != nil {
			for _, s := range mc.InjectSlots.Slots() {
				sched(mc.Src).Send[s] = c.SrcChannel
			}
			for d := range mc.DestDepth {
				for _, s := range mc.DestSlots(d).Slots() {
					sched(d).Recv[s] = c.DstChannels[d]
				}
			}
		}
	}
	return tables
}

// RouterEntry is the model's prediction of one router slot-table
// reservation: output port out must forward from input port in during
// the masked slots, for the router that owns the given link.
type RouterEntry struct {
	Router  topology.NodeID
	Out, In int
	Mask    slots.Mask
}

// RouterEntries predicts every router slot-table entry from the live
// connections: for link k of a path, the owning router forwards from
// the previous link's arrival port during the injection mask rotated to
// that link's depth.
func (m *Model) RouterEntries(conns []*core.Connection) []RouterEntry {
	var out []RouterEntry
	unicast := func(u *alloc.Unicast) {
		if u == nil {
			return
		}
		for _, pa := range u.Paths {
			off := 0
			for j, l := range pa.Path {
				if j > 0 {
					link := m.g.Link(l)
					prev := m.g.Link(pa.Path[j-1])
					out = append(out, RouterEntry{
						Router: link.From,
						Out:    link.FromPort,
						In:     prev.ToPort,
						Mask:   pa.InjectSlots.RotateUp(off),
					})
				}
				off += m.g.SlotAdvance(l)
			}
		}
	}
	for _, c := range conns {
		if c.State == core.Closed {
			continue
		}
		unicast(c.Fwd)
		unicast(c.Rev)
		if mc := c.Tree; mc != nil {
			// Each tree node has exactly one incoming edge; a fork
			// router forwards that one input on several outputs.
			inPort := make(map[topology.NodeID]int)
			for _, e := range mc.Edges {
				l := m.g.Link(e.Link)
				inPort[l.To] = l.ToPort
			}
			for _, e := range mc.Edges {
				l := m.g.Link(e.Link)
				in, ok := inPort[l.From]
				if !ok {
					continue // source NI owns the first link
				}
				out = append(out, RouterEntry{
					Router: l.From,
					Out:    l.FromPort,
					In:     in,
					Mask:   mc.InjectSlots.RotateUp(e.Depth),
				})
			}
		}
	}
	return out
}

// Latency is the model's closed-form latency prediction for a unicast
// connection, in cycles. Traversal is exact: a word injected on a path
// with cumulative slot advance A arrives A slots — SlotWords×A cycles —
// later (the paper's pipelined slot alignment). Scheduling is a bound:
// a word submitted at the worst moment waits at most MaxGap+2 slots for
// its next injection slot.
type Latency struct {
	// NetMin and NetMax bound the injection-to-delivery traversal:
	// SlotWords×A over the shortest and longest allocated path. For a
	// single-path connection NetMin == NetMax — the traversal is a
	// constant, which the differential runner asserts exactly.
	NetMin, NetMax uint64
	// SchedMax bounds submit-to-injection wait for a queue-empty
	// source: the worst circular gap of the send mask plus the slot in
	// progress and the NI's commit edge.
	SchedMax uint64
}

// E2EMax is the end-to-end bound for a source whose offered rate does
// not exceed the reservation, with queueAllowance cycles of queueing
// slack (one wheel period covers CBR phase beats).
func (l Latency) E2EMax(queueAllowance uint64) uint64 {
	return l.SchedMax + l.NetMax + queueAllowance
}

// MaxGapSlots returns the worst circular wait, in slots, from an
// arbitrary point of the wheel to the next slot of the mask. For a
// single reserved slot that is the whole wheel.
func MaxGapSlots(mask slots.Mask) int {
	ss := mask.Slots()
	if len(ss) == 0 {
		return mask.Size
	}
	max := 0
	for i := range ss {
		next := ss[(i+1)%len(ss)]
		gap := next - ss[i]
		if gap <= 0 {
			gap += mask.Size
		}
		if gap > max {
			max = gap
		}
	}
	return max
}

// UnicastLatency predicts the forward-direction latency of a unicast
// connection.
func (m *Model) UnicastLatency(c *core.Connection) Latency {
	w := uint64(m.slotWords)
	var lat Latency
	txMask := slots.NewMask(m.wheel)
	first := true
	for _, pa := range c.Fwd.Paths {
		a := uint64(m.g.PathSlotAdvance(pa.Path))
		net := w * a
		if first || net < lat.NetMin {
			lat.NetMin = net
		}
		if net > lat.NetMax {
			lat.NetMax = net
		}
		first = false
		txMask = txMask.Union(pa.InjectSlots)
	}
	lat.SchedMax = w*uint64(MaxGapSlots(txMask)+2) + 2
	return lat
}

// MulticastNet predicts the exact traversal latency, in cycles, from
// the multicast source to destination d: SlotWords times d's tree
// depth in slot advances.
func (m *Model) MulticastNet(c *core.Connection, d topology.NodeID) uint64 {
	return uint64(m.slotWords) * uint64(c.Tree.DestDepth[d])
}

// Bandwidth predicts the guaranteed forward throughput of a connection
// in words per cycle: the reserved share of the wheel. Each slot
// carries SlotWords words every Wheel×SlotWords cycles, so k reserved
// slots sustain k/Wheel words per cycle.
func (m *Model) Bandwidth(c *core.Connection) float64 {
	n := 0
	switch {
	case c.Tree != nil:
		n = c.Tree.InjectSlots.Count()
	case c.Fwd != nil:
		n = c.Fwd.SlotCount()
	}
	return float64(n) / float64(m.wheel)
}

// DeliverySlack is the tolerance, in words, of the attained-bandwidth
// differential check: pipeline fill and credit-loop ramp of the
// connection plus two wheel periods of phase beat, converted to words
// at link rate. Saturated sources must attain Bandwidth×cycles within
// this slack.
func (m *Model) DeliverySlack(c *core.Connection) float64 {
	w := m.slotWords
	maxAdv := 0
	fold := func(u *alloc.Unicast) {
		if u == nil {
			return
		}
		for _, pa := range u.Paths {
			if a := m.g.PathSlotAdvance(pa.Path); a > maxAdv {
				maxAdv = a
			}
		}
	}
	fold(c.Fwd)
	fold(c.Rev)
	if c.Tree != nil {
		for _, dep := range c.Tree.DestDepth {
			if dep > maxAdv {
				maxAdv = dep
			}
		}
	}
	return float64(w*(2*m.wheel+2*maxAdv) + 2*m.recvDepth + 16)
}
