package conformance

// The differential sweep: every seeded scenario is executed once per
// kernel worker count, and the runs must agree bit for bit — same
// fingerprint, same checker verdicts, same failures. Combined with the
// per-run sim-vs-model checks this is the acceptance gate the paper's
// guarantees are held to on every change.

import "fmt"

// SweepEntry is the cross-worker outcome of one scenario.
type SweepEntry struct {
	Scenario *Scenario
	Results  []*Result // one per worker count, same order as requested
	// Mismatch is set when the runs diverged across worker counts.
	Mismatch bool
}

// Passed reports whether every run passed and all agreed.
func (e *SweepEntry) Passed() bool {
	if e.Mismatch {
		return false
	}
	for _, r := range e.Results {
		if !r.Passed() {
			return false
		}
	}
	return true
}

// Sweep runs scenarios for seeds baseSeed..baseSeed+count-1, each under
// every worker count, and checks bit-exactness across the counts.
func Sweep(baseSeed uint64, count int, workers []int) ([]*SweepEntry, error) {
	return sweep(baseSeed, count, workers, false)
}

// SweepFastForward is Sweep with model-guided fast-forwarding armed, plus
// one extra cycle-accurate reference run per scenario (first in Results):
// a fast-forwarded run must match the accurate reference bit for bit —
// same fingerprint, verdicts, deliveries — under every worker count.
func SweepFastForward(baseSeed uint64, count int, workers []int) ([]*SweepEntry, error) {
	return sweep(baseSeed, count, workers, true)
}

func sweep(baseSeed uint64, count int, workers []int, ff bool) ([]*SweepEntry, error) {
	if len(workers) == 0 {
		workers = []int{1}
	}
	var entries []*SweepEntry
	for i := 0; i < count; i++ {
		sc := Generate(baseSeed + uint64(i))
		e := &SweepEntry{Scenario: sc}
		if ff {
			ref, err := run(sc, workers[0], false)
			if err != nil {
				return entries, fmt.Errorf("seed %d reference: %w", sc.Seed, err)
			}
			e.Results = append(e.Results, ref)
		}
		for _, w := range workers {
			r, err := run(sc, w, ff)
			if err != nil {
				return entries, fmt.Errorf("seed %d workers %d: %w", sc.Seed, w, err)
			}
			e.Results = append(e.Results, r)
		}
		first := e.Results[0]
		for _, r := range e.Results[1:] {
			if r.Fingerprint != first.Fingerprint ||
				r.Violations != first.Violations ||
				r.Delivered != first.Delivered ||
				r.Opened != first.Opened {
				e.Mismatch = true
			}
		}
		entries = append(entries, e)
	}
	return entries, nil
}
