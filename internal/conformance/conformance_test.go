package conformance

import (
	"runtime"
	"testing"

	"daelite/internal/core"
	"daelite/internal/slots"
	"daelite/internal/telemetry"
	"daelite/internal/topology"
)

func openTestPlatform(t *testing.T) (*core.Platform, *core.Connection) {
	t.Helper()
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1},
		core.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(2, 1, 0), SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 1_000_000); err != nil {
		t.Fatal(err)
	}
	return p, c
}

// TestModelMatchesAllocator pins the first differential: the model's
// fold over the live connections reproduces the allocator's occupancy
// words exactly, for unicast and multicast.
func TestModelMatchesAllocator(t *testing.T) {
	p, _ := openTestPlatform(t)
	mc, err := p.Open(core.ConnectionSpec{
		Src:      p.Mesh.NI(1, 1, 0),
		Dsts:     []topology.NodeID{p.Mesh.NI(0, 2, 0), p.Mesh.NI(2, 2, 0)},
		SlotsFwd: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(mc, 1_000_000); err != nil {
		t.Fatal(err)
	}
	m := NewModel(p)
	var conns []*core.Connection
	for _, c := range p.Connections() {
		conns = append(conns, c)
	}
	occ := m.LinkOccupancy(conns)
	nonEmpty := 0
	for _, l := range p.Mesh.Links() {
		want := occ[l.ID]
		got := p.Alloc.LinkOccupancy(l.ID)
		if got.Bits != want.Bits {
			t.Errorf("link %d: allocator %s, model %v", l.ID, got, want)
		}
		if got.Bits != 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("no occupied links — vacuous check")
	}
}

// TestCheckerQuietOnHealthyPlatform: a healthy run with traffic must
// report zero violations across every check.
func TestCheckerQuietOnHealthyPlatform(t *testing.T) {
	sc := Generate(7)
	sc.FaultLink = false
	r, err := Run(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Fatalf("healthy scenario failed: violations=%d failures=%v", r.Violations, r.Failures)
	}
}

// TestMutationSmoke is the harness's own fire drill: a seeded
// slot-table upset and a seeded credit corruption must both be caught
// and reported through the telemetry registry.
func TestMutationSmoke(t *testing.T) {
	res, err := MutationSmoke(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.SlotTableViolations == 0 {
		t.Error("slot-table corruption not detected")
	}
	if res.CreditViolations == 0 {
		t.Error("credit corruption not detected")
	}
	if res.Events == 0 {
		t.Error("no violation events reached the telemetry registry")
	}
}

// TestMutationSmokeParallelKernel: detection must not depend on the
// kernel worker count.
func TestMutationSmokeParallelKernel(t *testing.T) {
	res, err := MutationSmoke(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatalf("mutations not detected on 4-worker kernel: %+v", res)
	}
}

// TestDifferentialSweepWorkers runs seeded scenarios under worker
// counts 1, 2 and NumCPU and requires bit-exact agreement plus a clean
// differential verdict. The full 25-scenario sweep is the CI
// conformance job (cmd/daelite-conform); the in-tree test keeps a
// smaller always-on slice.
func TestDifferentialSweepWorkers(t *testing.T) {
	n := 4
	if testing.Short() {
		n = 2
	}
	workers := []int{1, 2, runtime.NumCPU()}
	entries, err := Sweep(100, n, workers)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Mismatch {
			t.Errorf("seed %d (%s): results diverged across workers %v",
				e.Scenario.Seed, e.Scenario, workers)
		}
		for _, r := range e.Results {
			if !r.Passed() {
				t.Errorf("seed %d workers %d: violations=%d failures=%v",
					e.Scenario.Seed, r.Workers, r.Violations, r.Failures)
			}
		}
	}
}

// TestGenerateDeterministic: the same seed expands to the same
// scenario.
func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(42), Generate(42)
	if a.String() != b.String() || len(a.Plans) != len(b.Plans) {
		t.Fatalf("seed 42 expanded differently: %s vs %s", a, b)
	}
	if Generate(42).String() == Generate(43).String() &&
		Generate(43).String() == Generate(44).String() {
		t.Fatal("adjacent seeds all expanded identically — generator ignores the seed?")
	}
}

// TestMaxGapSlots pins the scheduling-bound helper.
func TestMaxGapSlots(t *testing.T) {
	cases := []struct {
		bits uint64
		size int
		want int
	}{
		{0b00000001, 8, 8}, // single slot: whole wheel
		{0b00010001, 8, 4}, // evenly spread
		{0b00000011, 8, 7}, // adjacent pair: long wrap gap
		{0b11111111, 8, 1}, // every slot
		{0, 8, 8},          // empty mask: worst case
	}
	for _, c := range cases {
		m := slots.Mask{Bits: c.bits, Size: c.size}
		if got := MaxGapSlots(m); got != c.want {
			t.Errorf("MaxGapSlots(%08b/%d) = %d, want %d", c.bits, c.size, got, c.want)
		}
	}
}

// TestLatencyLawSingleSlot pins the closed-form traversal constant
// against a hand-built platform: SlotWords × path slot advance.
func TestLatencyLawSingleSlot(t *testing.T) {
	p, c := openTestPlatform(t)
	m := NewModel(p)
	lat := m.UnicastLatency(c)
	adv := uint64(p.Mesh.Graph.PathSlotAdvance(c.Fwd.Paths[0].Path))
	want := uint64(p.Params.SlotWords) * adv
	if lat.NetMin != want || lat.NetMax != want {
		t.Fatalf("model net latency [%d,%d], want exactly %d", lat.NetMin, lat.NetMax, want)
	}
}

// TestCheckerCountsInRegistry: violations surface as labelled telemetry
// counters, not just internal state.
func TestCheckerCountsInRegistry(t *testing.T) {
	p, c := openTestPlatform(t)
	reg := telemetry.NewRegistry()
	ck := Attach(p, reg, Options{SampleEvery: 16, LineRate: true})
	ck.Resync()
	p.Run(64)
	if ck.Violations() != 0 {
		t.Fatalf("healthy platform: %d violations", ck.Violations())
	}
	// Corrupt the hardware directly: clear the destination NI's receive
	// duty so the table check must fire on the next sample.
	dst := p.NI(c.Spec.Dst)
	if err := dst.Table().SetReceive(c.Fwd.Paths[0].DestSlots(p.Mesh.Graph), slots.NoChannel); err != nil {
		t.Fatal(err)
	}
	p.Run(64)
	if ck.ViolationCount(CheckTable) == 0 {
		t.Fatal("cleared NI receive duty not detected")
	}
	if got := ck.ViolationCount(CheckTable); got == 0 {
		t.Fatalf("registry counter not incremented: %d", got)
	}
	if len(reg.Events()) == 0 {
		t.Fatal("no telemetry events emitted")
	}
}
