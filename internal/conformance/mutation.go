package conformance

// Mutation smoke mode: deliberately corrupt a healthy platform and
// assert the checkers notice. Two seeded corruptions are planted — a
// slot-table upset (via the fault injector's single-event-upset model)
// and a credit-accounting corruption (a rogue register write over the
// real configuration tree) — and each must surface as checker
// violations reported through the telemetry registry. A harness that
// cannot see planted faults proves nothing about real ones.

import (
	"fmt"

	"daelite/internal/cfgproto"
	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/telemetry"
	"daelite/internal/topology"
)

// MutationResult reports what the checkers caught.
type MutationResult struct {
	// SlotTableViolations counts table/contention violations observed
	// after the seeded slot-table upset.
	SlotTableViolations uint64
	// CreditViolations counts credit-conservation violations observed
	// after the seeded credit corruption.
	CreditViolations uint64
	// Events counts conformance violation events in the registry.
	Events int
}

// Detected reports whether both corruptions were caught.
func (m MutationResult) Detected() bool {
	return m.SlotTableViolations > 0 && m.CreditViolations > 0
}

// mutationPlatform builds a small healthy platform with one open
// connection, traffic and an attached checker.
func mutationPlatform(workers int) (*core.Platform, *telemetry.Registry, *Checker, *core.Connection, error) {
	params := core.DefaultParams()
	params.RecvQueueDepth = 16 // below MaxCreditValue so an over-write is illegal
	params.Workers = workers
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1}, params, 0, 0)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	reg := telemetry.NewRegistry()
	ck := Attach(p, reg, Options{SampleEvery: 32, LineRate: true})
	c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(2, 2, 0), SlotsFwd: 2})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if err := p.AwaitOpen(c, 1_000_000); err != nil {
		return nil, nil, nil, nil, err
	}
	ck.Resync()
	p.Run(256)
	return p, reg, ck, c, nil
}

// MutationSmoke plants both corruptions (each on a fresh platform) and
// returns what the checkers reported. seed drives the fault injector;
// workers selects the kernel width.
func MutationSmoke(seed uint64, workers int) (MutationResult, error) {
	var res MutationResult

	// 1. Slot-table upset: clear a programmed router table entry.
	p, reg, ck, c, err := mutationPlatform(workers)
	if err != nil {
		return res, err
	}
	if ck.Violations() != 0 {
		return res, fmt.Errorf("conformance: healthy platform reported %d violations", ck.Violations())
	}
	link := p.Mesh.Graph.Link(c.Fwd.Paths[0].Path[1]) // first router-owned hop
	occ := p.Alloc.LinkOccupancy(link.ID)
	slot := occ.Slots()[0]
	_, err = fault.Attach(p, seed, fault.Fault{
		Kind: fault.SlotTableFlip, Router: link.From, Out: link.FromPort,
		Slot: slot, From: p.Cycle() + 8,
	})
	if err != nil {
		return res, err
	}
	p.Run(256)
	res.SlotTableViolations = ck.ViolationCount(CheckTable) + ck.ViolationCount(CheckContention)
	res.Events += len(reg.Events())
	p.Sim.Shutdown()

	// 2. Credit-accounting corruption: a rogue write sets the source
	// credit counter far above the receive queue capacity.
	p, reg, ck, c, err = mutationPlatform(workers)
	if err != nil {
		return res, err
	}
	if ck.Violations() != 0 {
		return res, fmt.Errorf("conformance: healthy platform reported %d violations", ck.Violations())
	}
	rogue, err := cfgproto.WriteRegPacket([]cfgproto.RegWrite{{
		Element: int(c.Spec.Src),
		Reg:     cfgproto.RegSelect(cfgproto.RegCredit, c.SrcChannel),
		Value:   62, // far above the 16-word receive queue
	}})
	if err != nil {
		return res, err
	}
	if err := p.Host.SubmitPacket(rogue); err != nil {
		return res, err
	}
	if _, err := p.CompleteConfig(100_000); err != nil {
		return res, err
	}
	p.Run(256)
	res.CreditViolations = ck.ViolationCount(CheckCredit)
	res.Events += len(reg.Events())
	p.Sim.Shutdown()
	return res, nil
}
