package cli

// The shared -workload front-end: daelite-sim, daelite-chaos and
// daelite-conform all load a pack file, execute it against the model's
// predictions and render the same report — only the knobs differ
// (chaos cadence, sweep worker counts). The commands stay thin argv
// shims over these functions, which return errors instead of exiting
// so the behaviour is testable in-process.

import (
	"fmt"
	"io"
	"os"
	"strings"

	"daelite/internal/workload"
)

// LoadWorkload parses and compiles a workload pack file.
func LoadWorkload(path string) (*workload.Compiled, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ws, err := workload.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	wc, err := workload.Compile(ws)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return wc, nil
}

// WorkloadRun parameterizes one -workload execution.
type WorkloadRun struct {
	// Path is the pack JSON file.
	Path string
	// ExpectFingerprint, when non-empty, makes the run fail unless its
	// determinism fingerprint equals this hex value.
	ExpectFingerprint string
	// ChaosEvery plants a link-down fault in every Nth phase (0: off).
	ChaosEvery int
}

// RunWorkload is the -workload mode of daelite-sim and daelite-chaos:
// compile the pack, execute every phase against the model's predictions
// on a platform built from the shared flags (exporters attached), and
// render the per-phase report to out. A run that diverges from the
// model returns an error — the pack is a differential correctness test,
// not just a traffic generator.
func RunWorkload(out io.Writer, pf *PlatformFlags, run WorkloadRun) error {
	wc, err := LoadWorkload(run.Path)
	if err != nil {
		return err
	}
	p, err := wc.BuildPlatform(pf.Workers, pf.FastForward)
	if err != nil {
		return err
	}
	defer p.Sim.Shutdown()
	exp, err := pf.StartExporters(p)
	if err != nil {
		return err
	}
	if url := exp.MetricsURL(); url != "" {
		fmt.Fprintf(out, "metrics: %s\n", url)
	}
	unhook := OnSignal(func() { p.Sim.Stop("interrupted by signal") })
	defer unhook()

	opt := workload.RunOptions{Platform: p, ChaosEvery: run.ChaosEvery}
	if exp != nil {
		opt.Registry = exp.Registry
	}
	res, err := workload.Run(wc, opt)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Report())
	if res.Skipped > 0 {
		fmt.Fprintf(out, "fast-forwarded %d cycles\n", res.Skipped)
	}
	if err := exp.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "fingerprint: %016x\n", res.Fingerprint)
	if run.ExpectFingerprint != "" {
		if err := CheckFingerprint(res.Fingerprint, run.ExpectFingerprint); err != nil {
			return err
		}
	}
	if !res.Passed() {
		var b strings.Builder
		for i, msg := range res.Failures {
			if i >= 5 {
				break
			}
			fmt.Fprintf(&b, "\n  %s", msg)
		}
		return fmt.Errorf("workload %s diverged: %d violations, %d failures%s",
			res.Pack, res.Violations, len(res.Failures), b.String())
	}
	return nil
}

// SweepWorkload is the -workload mode of daelite-conform: one pack,
// every worker count, bit-exact or bust, then the pack's own mutation
// smoke (a planted slot-table flip the checkers must catch). Progress
// renders to out; any divergence, violation or undetected corruption
// returns an error.
func SweepWorkload(out io.Writer, path string, workers []int, fastforward, mutate bool) error {
	wc, err := LoadWorkload(path)
	if err != nil {
		return err
	}
	sw, err := workload.Sweep(wc, workers, fastforward)
	if err != nil {
		return fmt.Errorf("sweep %s: %w", wc.Name(), err)
	}
	failed := !sw.Passed()
	for _, m := range sw.Mismatches {
		fmt.Fprintf(out, "FAIL %s: %s\n", wc.Name(), m)
	}
	for _, r := range append([]*workload.Result{sw.Reference}, sw.Results...) {
		if r.Passed() {
			continue
		}
		fmt.Fprintf(out, "FAIL %s workers=%d ff=%v violations=%d\n", wc.Name(), r.Workers, r.FastForward, r.Violations)
		for _, msg := range r.Failures {
			fmt.Fprintf(out, "     %s\n", msg)
		}
	}
	var skipped uint64
	for _, r := range sw.Results {
		skipped += r.Skipped
	}
	fmt.Fprintf(out, "workload %s: %d phases, fingerprint=%016x delivered=%d, bit-exact across workers %v\n",
		wc.Name(), len(wc.Phases), sw.Reference.Fingerprint, sw.Reference.Delivered, workers)
	if fastforward {
		fmt.Fprintf(out, "fast-forward: %d cycles skipped across all runs, bit-exact vs accurate reference\n", skipped)
	}

	if mutate {
		violations, err := workload.MutationSmoke(wc, 1)
		if err != nil {
			return fmt.Errorf("mutation smoke %s: %w", wc.Name(), err)
		}
		fmt.Fprintf(out, "mutation smoke: violations after planted slot-table flip=%d\n", violations)
		if violations == 0 {
			return fmt.Errorf("mutation smoke %s: the planted corruption went undetected", wc.Name())
		}
	}
	if failed {
		return fmt.Errorf("workload %s diverged across worker counts", wc.Name())
	}
	return nil
}
