package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"daelite/internal/workload"
)

// writePack marshals a workload spec to a pack file in a test dir.
func writePack(t *testing.T, s *workload.Spec) string {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), s.Name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadWorkloadErrors(t *testing.T) {
	if _, err := LoadWorkload(filepath.Join(t.TempDir(), "nosuch.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWorkload(bad); err == nil {
		t.Fatal("malformed pack loaded")
	}
}

// TestRunWorkloadPack drives the shared -workload front-end end to end:
// the DNN pack runs clean with exporters attached, the report renders
// every phase, the telemetry and trace files land, and a wrong
// -expect-fingerprint fails the run.
func TestRunWorkloadPack(t *testing.T) {
	path := writePack(t, workload.ExampleDNN())
	dir := t.TempDir()
	pf := &PlatformFlags{
		Workers:      1,
		TelemetryOut: filepath.Join(dir, "telemetry.ndjson"),
		TraceOut:     filepath.Join(dir, "trace.json"),
	}
	var out strings.Builder
	if err := RunWorkload(&out, pf, WorkloadRun{Path: path}); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"conv1.weights", "fc.weights", "PASS", "fingerprint:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	for _, f := range []string{pf.TelemetryOut, pf.TraceOut} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}

	if err := RunWorkload(&out, &PlatformFlags{Workers: 1},
		WorkloadRun{Path: path, ExpectFingerprint: "deadbeef"}); err == nil {
		t.Fatal("wrong -expect-fingerprint accepted")
	}
}

// TestRunWorkloadPackChaos: with a chaos cadence the run plants faults,
// repairs around them, and still finishes deterministic and clean.
func TestRunWorkloadPackChaos(t *testing.T) {
	path := writePack(t, workload.ExampleDNN())
	var out strings.Builder
	if err := RunWorkload(&out, &PlatformFlags{Workers: 1}, WorkloadRun{Path: path, ChaosEvery: 2}); err != nil {
		t.Fatalf("chaos run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "repaired") {
		t.Fatalf("chaos run shows no fault column:\n%s", out.String())
	}
}

// TestSweepWorkloadPack runs the conformance front-end on the Tiny Tera
// pack: bit-exact across worker counts with fast-forward, then the
// mutation smoke.
func TestSweepWorkloadPack(t *testing.T) {
	path := writePack(t, workload.ExampleTinyTera("hotspot"))
	var out strings.Builder
	workers := []int{1, runtime.NumCPU()}
	if err := SweepWorkload(&out, path, workers, true, true); err != nil {
		t.Fatalf("sweep: %v\n%s", err, out.String())
	}
	for _, want := range []string{"bit-exact across workers", "fast-forward:", "mutation smoke:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}
