package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// OnSignal registers fn to run (in its own goroutine) when the process
// receives its first SIGINT or SIGTERM, and returns a cancel function
// that unregisters the handler. A second signal while fn is still
// running force-exits with the conventional 128+SIGINT status — the
// escape hatch when a drain hangs.
//
// Batch commands (daelite-sim, daelite-chaos) use this to stop the
// simulation kernel cleanly — sim.Stop is thread-safe — so the run
// falls out of its stepping loop, writes its reports and telemetry
// snapshot, and shuts the metrics endpoint down instead of dying with
// scrapes in flight.
func OnSignal(fn func()) (cancel func()) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "received %s, shutting down (signal again to force)\n", sig)
			go fn()
			select {
			case sig = <-ch:
				fmt.Fprintf(os.Stderr, "received %s again, exiting\n", sig)
				os.Exit(130)
			case <-done:
			}
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

// ShutdownContext returns a context cancelled on the first SIGINT or
// SIGTERM; a second signal force-exits. Long-running services
// (daelite-admd) block on <-ctx.Done() and then drain.
func ShutdownContext() (context.Context, context.CancelFunc) {
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		// Re-arm: NotifyContext stops listening once cancelled, so a
		// second signal would otherwise kill the process mid-snapshot
		// with the default action. Catch it and exit deliberately.
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
		sig := <-ch
		fmt.Fprintf(os.Stderr, "received %s during drain, exiting\n", sig)
		os.Exit(130)
	}()
	return ctx, cancel
}
