package cli

import (
	"fmt"
	"strconv"
	"strings"

	"daelite/internal/core"
	"daelite/internal/sim"
)

// AttachFingerprint installs a determinism fingerprint on the platform:
// every valid flit leaving any NI is folded (data and cycle) into an
// order-sensitive hash, so two runs of the same seeded invocation agree
// on the fingerprint exactly when they delivered the same words at the
// same cycles. Attach before any traffic runs; the returned function
// reads the fold accumulated so far.
func AttachFingerprint(p *core.Platform) func() uint64 {
	fp := new(sim.Fingerprint)
	for _, id := range p.Mesh.AllNIs {
		w := p.NI(id).OutputWire()
		p.Sim.AddProbe(func(cycle uint64) {
			if f := w.Get(); f.Valid {
				*fp = fp.Mix(uint64(f.Data)).Mix(cycle)
			}
		})
	}
	return func() uint64 { return fp.Sum() }
}

// ParseFingerprint parses a fingerprint as printed by the front-ends:
// 16 hex digits, optionally 0x-prefixed.
func ParseFingerprint(s string) (uint64, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 64)
	if err != nil {
		return 0, fmt.Errorf("bad fingerprint %q: %w", s, err)
	}
	return v, nil
}

// CheckFingerprint compares a run's fingerprint against the value the
// -expect-fingerprint flag carried. A mismatch is a determinism failure:
// the front-ends exit non-zero on it.
func CheckFingerprint(got uint64, expect string) error {
	want, err := ParseFingerprint(expect)
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("determinism fingerprint mismatch: run %016x, expected %016x", got, want)
	}
	return nil
}
