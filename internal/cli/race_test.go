package cli

import (
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/traffic"
)

// TestScrapeDuringRepair hammers the Prometheus endpoint from several
// goroutines while the stepping goroutine detects a link failure and
// runs Platform.RepairStalled — the heaviest reconfiguration path the
// platform has. Under -race this proves the scrape handler only touches
// the harvest mirror, never live simulation state, so operators can
// leave dashboards polling while repairs are in flight.
func TestScrapeDuringRepair(t *testing.T) {
	f := newFlags(t, "-mesh", "3x3", "-metrics-addr", "127.0.0.1:0", "-telemetry-sample", "64")
	p, err := f.BuildMesh()
	if err != nil {
		t.Fatal(err)
	}
	e, err := f.StartExporters(p)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(2, 0, 0), SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 1_000_000); err != nil {
		t.Fatal(err)
	}
	traffic.NewSource(p.Sim, "src", p.NI(c.Spec.Src), c.SrcChannel,
		traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.1, Seed: 1})
	traffic.NewSink(p.Sim, "sink", p.NI(c.Spec.Dst), c.DstChannel)

	victim := c.Fwd.Paths[0].Path[1] // router-to-router hop, repairable
	if _, err := fault.Attach(p, 1, fault.Fault{Kind: fault.LinkDown, Link: victim, From: p.Cycle() + 200}); err != nil {
		t.Fatal(err)
	}
	mon := core.NewHealthMonitor(p, 128)

	// Scrapers: poll until told to stop, counting successful reads.
	var stop atomic.Bool
	var scrapes atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := http.Get(e.MetricsURL())
				if err != nil {
					continue // server teardown race at the very end
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					scrapes.Add(1)
				}
			}
		}()
	}

	// Stepping goroutine: soak, detect the stall, repair around it —
	// all while the scrapers run.
	repaired := false
	for end := p.Cycle() + 6000; p.Cycle() < end; {
		p.Run(256)
		if len(mon.Stalled()) == 0 {
			continue
		}
		res, err := p.RepairStalled(mon, 1_000_000)
		if err != nil {
			t.Fatalf("repair: %v", err)
		}
		if len(res) > 0 && res[0].Conn != nil {
			repaired = true
		}
	}
	// On a fast machine the soak can finish before a scraper completes a
	// single request; keep the server up until at least one lands so the
	// success assertion below measures the handler, not the scheduler.
	for deadline := time.Now().Add(5 * time.Second); scrapes.Load() == 0 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if !repaired {
		t.Fatal("link failure never repaired — the race window was not exercised")
	}
	if scrapes.Load() == 0 {
		t.Fatal("no successful scrapes during the run")
	}
}
