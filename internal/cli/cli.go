// Package cli carries the command-line surface shared by the daelite
// simulation front-ends (daelite-sim, daelite-chaos): the mesh/wheel/
// workers platform flags, platform construction from them, and the
// optional telemetry exporters — a Prometheus text endpoint served over
// HTTP while the run is in flight, and an NDJSON snapshot written when it
// ends. Front-ends register the shared flags once and keep only their
// command-specific ones, so a new platform or telemetry flag lands in
// every command at the same time.
package cli

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"daelite/internal/core"
	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/topology"
)

// PlatformFlags is the shared flag set. Zero value is not useful; call
// RegisterPlatformFlags to bind it to a flag.FlagSet with defaults.
type PlatformFlags struct {
	// Mesh is the "-mesh WxH" dimension string.
	Mesh string
	// Wheel is the TDM slot-table size.
	Wheel int
	// Workers is the simulation kernel parallelism (0 = one per CPU,
	// 1 = sequential; results are identical for every value).
	Workers int
	// FastForward arms model-guided fast-forwarding: the kernel skips
	// whole hyper-periods while the platform is provably quiescent.
	// Results are bit-identical to a cycle-accurate run.
	FastForward bool

	// MetricsAddr, when non-empty, serves Prometheus text exposition on
	// http://<addr>/metrics for the duration of the run.
	MetricsAddr string
	// TelemetryOut, when non-empty, writes an NDJSON snapshot of the
	// registry (metrics, spans, events) to this file at the end of the
	// run.
	TelemetryOut string
	// TelemetrySample is the harvest interval in cycles (<= 0 selects
	// core.DefaultTelemetrySample).
	TelemetrySample int

	// TraceOut, when non-empty, attaches the causal tracer and writes
	// the run's trace as Chrome trace-event JSON (Perfetto-loadable) to
	// this file at the end of the run.
	TraceOut string
	// FlightDump, when non-empty, attaches the causal tracer and arms
	// the flight recorder: on a trigger (conformance violation, health
	// stall, SIGQUIT) the recent span/event rings dump to
	// <prefix>-<reason>.ndjson and <prefix>-<reason>.trace.json.
	FlightDump string
	// Pprof registers net/http/pprof handlers on the -metrics-addr
	// listener under /debug/pprof/.
	Pprof bool
}

// RegisterPlatformFlags binds the shared flags to fs with the standard
// defaults. Call before fs.Parse.
func RegisterPlatformFlags(fs *flag.FlagSet) *PlatformFlags {
	f := &PlatformFlags{}
	fs.StringVar(&f.Mesh, "mesh", "4x4", "mesh dimensions WxH")
	fs.IntVar(&f.Wheel, "wheel", 16, "TDM slot-table size")
	fs.IntVar(&f.Workers, "workers", 0, "simulation kernel workers (0 = one per CPU, 1 = sequential; results are identical)")
	fs.BoolVar(&f.FastForward, "fastforward", false, "skip whole hyper-periods while the platform is quiescent (bit-identical results)")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve Prometheus metrics on this address (host:port) during the run")
	fs.StringVar(&f.TelemetryOut, "telemetry-out", "", "write an NDJSON telemetry snapshot to this file at the end of the run")
	fs.IntVar(&f.TelemetrySample, "telemetry-sample", core.DefaultTelemetrySample, "telemetry harvest interval in cycles")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write the causal trace (Chrome trace-event JSON) to this file at the end of the run")
	fs.StringVar(&f.FlightDump, "flight-dump", "", "arm the flight recorder; dumps write to <prefix>-<reason>.{ndjson,trace.json}")
	fs.BoolVar(&f.Pprof, "pprof", false, "serve net/http/pprof under /debug/pprof/ on -metrics-addr")
	return f
}

// Params resolves the platform parameters the flags describe.
func (f *PlatformFlags) Params() core.Params {
	params := core.DefaultParams()
	params.Wheel = f.Wheel
	params.Workers = f.Workers
	params.FastForward = f.FastForward
	return params
}

// BuildMesh parses -mesh and constructs a mesh platform from the flags.
func (f *PlatformFlags) BuildMesh() (*core.Platform, error) {
	var w, h int
	if _, err := fmt.Sscanf(f.Mesh, "%dx%d", &w, &h); err != nil {
		return nil, fmt.Errorf("bad -mesh %q: %w", f.Mesh, err)
	}
	return core.NewMeshPlatform(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1}, f.Params(), 0, 0)
}

// TelemetryEnabled reports whether any telemetry exporter flag was given.
func (f *PlatformFlags) TelemetryEnabled() bool {
	return f.MetricsAddr != "" || f.TelemetryOut != ""
}

// TracingEnabled reports whether any causal-tracing flag was given.
func (f *PlatformFlags) TracingEnabled() bool {
	return f.TraceOut != "" || f.FlightDump != ""
}

// Exporters is the live exporter state of one run: the registry the
// platform publishes into, the optional HTTP server, and the pending
// NDJSON output path. A nil *Exporters is valid and inert, so callers can
// unconditionally defer Close.
type Exporters struct {
	// Registry is the attached telemetry registry.
	Registry *telemetry.Registry
	// Tracer is the attached causal tracer (nil unless -trace-out or
	// -flight-dump was given).
	Tracer *tracing.Tracer
	// Recorder is the armed flight recorder (nil unless -flight-dump
	// was given). Front-ends hook their dump triggers (conformance
	// violations, health stalls) onto it; SIGQUIT is armed here.
	Recorder *tracing.Recorder

	p        *core.Platform
	srv      *http.Server
	ln       net.Listener
	out      string
	traceOut string
	addr     string
	sigDone  func()
}

// StartExporters attaches a telemetry registry to the platform and starts
// the exporters the flags ask for. Returns (nil, nil) when no telemetry
// flag was given — the platform then runs with zero telemetry cost. Call
// before opening connections so set-up spans are captured, and before
// stats.NewMonitor so the monitor publishes into the same registry.
//
// The /metrics handler renders whatever the harvest probe last mirrored —
// it never touches simulation state, so scraping is race-free while the
// run is stepping; values are at most one sample interval stale.
func (f *PlatformFlags) StartExporters(p *core.Platform) (*Exporters, error) {
	if f.Pprof && f.MetricsAddr == "" {
		return nil, fmt.Errorf("-pprof requires -metrics-addr")
	}
	if !f.TelemetryEnabled() && !f.TracingEnabled() {
		return nil, nil
	}
	reg := p.Telemetry()
	if reg == nil {
		reg = telemetry.NewRegistry()
		p.AttachTelemetry(reg, f.TelemetrySample)
	}
	e := &Exporters{Registry: reg, p: p, out: f.TelemetryOut, traceOut: f.TraceOut}
	if f.TracingEnabled() {
		e.Tracer = p.Tracer()
		if e.Tracer == nil {
			e.Tracer = tracing.New(tracing.Options{})
			p.AttachTracer(e.Tracer)
		}
		if f.FlightDump != "" {
			e.Recorder = tracing.NewRecorder(e.Tracer, f.FlightDump)
			e.sigDone = armSIGQUIT(e.Recorder)
		}
	}
	if f.MetricsAddr != "" {
		ln, err := net.Listen("tcp", f.MetricsAddr)
		if err != nil {
			return nil, fmt.Errorf("-metrics-addr: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = telemetry.WritePrometheus(w, reg)
		})
		if f.Pprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		e.ln = ln
		e.addr = ln.Addr().String()
		e.srv = &http.Server{Handler: mux}
		go func() { _ = e.srv.Serve(ln) }()
	}
	return e, nil
}

// armSIGQUIT dumps the flight recorder on SIGQUIT — the classic "what is
// this process doing" signal — and returns a disarm function. The dump
// is written from the signal goroutine; the tracer's rings are
// mutex-guarded, so a concurrent stepping run is safe to snapshot.
func armSIGQUIT(rec *tracing.Recorder) func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for range ch {
			if paths, err := rec.Dump("sigquit"); err == nil && paths != nil {
				fmt.Fprintf(os.Stderr, "flight recorder: dumped %v\n", paths)
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}

// MetricsURL returns the scrape URL of the running endpoint ("" without
// -metrics-addr). Useful with a ":0" listen address.
func (e *Exporters) MetricsURL() string {
	if e == nil || e.addr == "" {
		return ""
	}
	return "http://" + e.addr + "/metrics"
}

// Close finishes the exporters: it forces a final harvest, writes the
// NDJSON snapshot if -telemetry-out was given, and shuts the HTTP
// server down gracefully — in-flight scrapes get up to two seconds to
// complete (they see the final harvest), stragglers are cut off. Call
// from the goroutine that stepped the simulation, after the run.
func (e *Exporters) Close() error {
	if e == nil {
		return nil
	}
	if e.sigDone != nil {
		e.sigDone()
	}
	e.p.FlushTelemetry()
	var firstErr error
	if e.traceOut != "" {
		f, err := os.Create(e.traceOut)
		if err == nil {
			err = tracing.WriteChrome(f, e.Tracer)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			firstErr = fmt.Errorf("-trace-out: %w", err)
		}
	}
	if e.out != "" {
		f, err := os.Create(e.out)
		if err == nil {
			err = telemetry.WriteNDJSON(f, e.Registry, e.p.Cycle())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("-telemetry-out: %w", err)
		}
	}
	if e.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := e.srv.Shutdown(ctx)
		cancel()
		if err != nil {
			err = e.srv.Close()
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
