// Package cli carries the command-line surface shared by the daelite
// simulation front-ends (daelite-sim, daelite-chaos): the mesh/wheel/
// workers platform flags, platform construction from them, and the
// optional telemetry exporters — a Prometheus text endpoint served over
// HTTP while the run is in flight, and an NDJSON snapshot written when it
// ends. Front-ends register the shared flags once and keep only their
// command-specific ones, so a new platform or telemetry flag lands in
// every command at the same time.
package cli

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"daelite/internal/core"
	"daelite/internal/telemetry"
	"daelite/internal/topology"
)

// PlatformFlags is the shared flag set. Zero value is not useful; call
// RegisterPlatformFlags to bind it to a flag.FlagSet with defaults.
type PlatformFlags struct {
	// Mesh is the "-mesh WxH" dimension string.
	Mesh string
	// Wheel is the TDM slot-table size.
	Wheel int
	// Workers is the simulation kernel parallelism (0 = one per CPU,
	// 1 = sequential; results are identical for every value).
	Workers int

	// MetricsAddr, when non-empty, serves Prometheus text exposition on
	// http://<addr>/metrics for the duration of the run.
	MetricsAddr string
	// TelemetryOut, when non-empty, writes an NDJSON snapshot of the
	// registry (metrics, spans, events) to this file at the end of the
	// run.
	TelemetryOut string
	// TelemetrySample is the harvest interval in cycles (<= 0 selects
	// core.DefaultTelemetrySample).
	TelemetrySample int
}

// RegisterPlatformFlags binds the shared flags to fs with the standard
// defaults. Call before fs.Parse.
func RegisterPlatformFlags(fs *flag.FlagSet) *PlatformFlags {
	f := &PlatformFlags{}
	fs.StringVar(&f.Mesh, "mesh", "4x4", "mesh dimensions WxH")
	fs.IntVar(&f.Wheel, "wheel", 16, "TDM slot-table size")
	fs.IntVar(&f.Workers, "workers", 0, "simulation kernel workers (0 = one per CPU, 1 = sequential; results are identical)")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve Prometheus metrics on this address (host:port) during the run")
	fs.StringVar(&f.TelemetryOut, "telemetry-out", "", "write an NDJSON telemetry snapshot to this file at the end of the run")
	fs.IntVar(&f.TelemetrySample, "telemetry-sample", core.DefaultTelemetrySample, "telemetry harvest interval in cycles")
	return f
}

// Params resolves the platform parameters the flags describe.
func (f *PlatformFlags) Params() core.Params {
	params := core.DefaultParams()
	params.Wheel = f.Wheel
	params.Workers = f.Workers
	return params
}

// BuildMesh parses -mesh and constructs a mesh platform from the flags.
func (f *PlatformFlags) BuildMesh() (*core.Platform, error) {
	var w, h int
	if _, err := fmt.Sscanf(f.Mesh, "%dx%d", &w, &h); err != nil {
		return nil, fmt.Errorf("bad -mesh %q: %w", f.Mesh, err)
	}
	return core.NewMeshPlatform(topology.MeshSpec{Width: w, Height: h, NIsPerRouter: 1}, f.Params(), 0, 0)
}

// TelemetryEnabled reports whether any telemetry exporter flag was given.
func (f *PlatformFlags) TelemetryEnabled() bool {
	return f.MetricsAddr != "" || f.TelemetryOut != ""
}

// Exporters is the live exporter state of one run: the registry the
// platform publishes into, the optional HTTP server, and the pending
// NDJSON output path. A nil *Exporters is valid and inert, so callers can
// unconditionally defer Close.
type Exporters struct {
	// Registry is the attached telemetry registry.
	Registry *telemetry.Registry

	p    *core.Platform
	srv  *http.Server
	ln   net.Listener
	out  string
	addr string
}

// StartExporters attaches a telemetry registry to the platform and starts
// the exporters the flags ask for. Returns (nil, nil) when no telemetry
// flag was given — the platform then runs with zero telemetry cost. Call
// before opening connections so set-up spans are captured, and before
// stats.NewMonitor so the monitor publishes into the same registry.
//
// The /metrics handler renders whatever the harvest probe last mirrored —
// it never touches simulation state, so scraping is race-free while the
// run is stepping; values are at most one sample interval stale.
func (f *PlatformFlags) StartExporters(p *core.Platform) (*Exporters, error) {
	if !f.TelemetryEnabled() {
		return nil, nil
	}
	reg := p.Telemetry()
	if reg == nil {
		reg = telemetry.NewRegistry()
		p.AttachTelemetry(reg, f.TelemetrySample)
	}
	e := &Exporters{Registry: reg, p: p, out: f.TelemetryOut}
	if f.MetricsAddr != "" {
		ln, err := net.Listen("tcp", f.MetricsAddr)
		if err != nil {
			return nil, fmt.Errorf("-metrics-addr: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = telemetry.WritePrometheus(w, reg)
		})
		e.ln = ln
		e.addr = ln.Addr().String()
		e.srv = &http.Server{Handler: mux}
		go func() { _ = e.srv.Serve(ln) }()
	}
	return e, nil
}

// MetricsURL returns the scrape URL of the running endpoint ("" without
// -metrics-addr). Useful with a ":0" listen address.
func (e *Exporters) MetricsURL() string {
	if e == nil || e.addr == "" {
		return ""
	}
	return "http://" + e.addr + "/metrics"
}

// Close finishes the exporters: it forces a final harvest, writes the
// NDJSON snapshot if -telemetry-out was given, and shuts the HTTP
// server down gracefully — in-flight scrapes get up to two seconds to
// complete (they see the final harvest), stragglers are cut off. Call
// from the goroutine that stepped the simulation, after the run.
func (e *Exporters) Close() error {
	if e == nil {
		return nil
	}
	e.p.FlushTelemetry()
	var firstErr error
	if e.out != "" {
		f, err := os.Create(e.out)
		if err == nil {
			err = telemetry.WriteNDJSON(f, e.Registry, e.p.Cycle())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			firstErr = fmt.Errorf("-telemetry-out: %w", err)
		}
	}
	if e.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := e.srv.Shutdown(ctx)
		cancel()
		if err != nil {
			err = e.srv.Close()
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
