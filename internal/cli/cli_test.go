package cli

import (
	"bufio"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"daelite/internal/core"
	"daelite/internal/traffic"
)

func newFlags(t *testing.T, args ...string) *PlatformFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterPlatformFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBuildMesh(t *testing.T) {
	f := newFlags(t, "-mesh", "3x2", "-wheel", "8", "-workers", "1")
	p, err := f.BuildMesh()
	if err != nil {
		t.Fatal(err)
	}
	if p.Mesh.Spec.Width != 3 || p.Mesh.Spec.Height != 2 {
		t.Fatalf("mesh = %dx%d", p.Mesh.Spec.Width, p.Mesh.Spec.Height)
	}
	if p.Params.Wheel != 8 {
		t.Fatalf("wheel = %d", p.Params.Wheel)
	}
	if _, err := newFlags(t, "-mesh", "nope").BuildMesh(); err == nil {
		t.Fatal("bad mesh accepted")
	}
}

func TestExportersDisabled(t *testing.T) {
	f := newFlags(t)
	p, err := f.BuildMesh()
	if err != nil {
		t.Fatal(err)
	}
	e, err := f.StartExporters(p)
	if err != nil {
		t.Fatal(err)
	}
	if e != nil {
		t.Fatal("exporters started without telemetry flags")
	}
	if e.MetricsURL() != "" {
		t.Fatal("nil exporters produced a URL")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if p.Telemetry() != nil {
		t.Fatal("registry attached without telemetry flags")
	}
}

// TestExportersLive drives a small platform with the HTTP endpoint up,
// scrapes it mid-run, and checks the NDJSON snapshot lands on Close.
func TestExportersLive(t *testing.T) {
	out := filepath.Join(t.TempDir(), "telemetry.ndjson")
	f := newFlags(t, "-mesh", "2x2", "-metrics-addr", "127.0.0.1:0", "-telemetry-out", out)
	p, err := f.BuildMesh()
	if err != nil {
		t.Fatal(err)
	}
	e, err := f.StartExporters(p)
	if err != nil {
		t.Fatal(err)
	}
	if e.Registry == nil || p.Telemetry() != e.Registry {
		t.Fatal("registry not attached to the platform")
	}

	c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 1, 0), SlotsFwd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(c, 10000); err != nil {
		t.Fatal(err)
	}
	traffic.NewSource(p.Sim, "src", p.NI(c.Spec.Src), c.SrcChannel,
		traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.2, Seed: 1})
	traffic.NewSink(p.Sim, "sink", p.NI(c.Spec.Dst), c.DstChannel)
	p.Run(2000)

	resp, err := http.Get(e.MetricsURL())
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{"daelite_cycle", "daelite_ni_injected_words_total", "daelite_config_spans_total{op=\"setup\"}"} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q:\n%s", want, text)
		}
	}

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// The server must be down after Close.
	if _, err := http.Get(e.MetricsURL()); err == nil {
		t.Fatal("metrics endpoint still up after Close")
	}
	// NDJSON snapshot: a meta line followed by one JSON object per line.
	nf, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	sc := bufio.NewScanner(nf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("line %d is not a JSON object: %q", lines, line)
		}
		if lines == 0 && !strings.Contains(line, `"record":"meta"`) {
			t.Fatalf("first line is not the meta record: %q", line)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines < 10 {
		t.Fatalf("NDJSON snapshot suspiciously small: %d lines", lines)
	}
}
