// Package router implements the daelite network router (Fig. 4 of the
// paper): a blindly-switching TDM crossbar with a slot table per output
// port, a fixed two-cycle hop latency (one cycle of link traversal, one of
// crossbar traversal — data is buffered twice), a configuration submodule
// fed by the broadcast configuration tree, and multicast by construction
// (several outputs may select the same input in the same slot).
//
// Timing convention (shared by the whole repository): a component's Eval
// at cycle c computes the values its output registers present during cycle
// c+1, exactly like RTL next-state logic. A flit on the router's input
// wire during slot s appears on the selected output wire during slot s+1,
// so the slot-table index of a router equals the source injection slot
// plus the router's position along the path — the invariant the
// configuration protocol's mask rotation relies on.
package router

import (
	"fmt"

	"daelite/internal/cfgproto"
	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/slots"
)

// Params holds the static hardware parameters of a router.
type Params struct {
	// Wheel is the slot-table size (number of TDM slots).
	Wheel int
	// SlotWords is the slot length in words (2 in daelite).
	SlotWords int
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Wheel <= 0 || p.Wheel > slots.MaxTableSize {
		return fmt.Errorf("router: wheel %d out of range", p.Wheel)
	}
	if p.SlotWords <= 0 {
		return fmt.Errorf("router: slot words %d out of range", p.SlotWords)
	}
	return nil
}

// Router is one daelite router instance.
type Router struct {
	name   string
	id     int // configuration element ID
	params Params

	// Data path. inWires[i] is the wire feeding input port i; outWires[o]
	// is the wire driven by output port o. The router owns the output
	// wires; upstream elements own the input wires.
	inWires  []*sim.Reg[phit.Flit]
	inRegs   []*sim.Reg[phit.Flit] // first buffering stage
	outWires []*sim.Reg[phit.Flit]
	// outIdle[o] records that output o already holds the zero flit, so
	// unreserved slots need no re-drive. Invariant: outIdle[o] implies
	// outWires[o] carries phit.Idle() — external writers (the fault
	// injector) only ever overwrite driven (non-idle) wires with idle,
	// never the reverse.
	outIdle []bool

	table *slots.RouterTable
	dec   *cfgproto.Decoder

	// Configuration tree node. cfgIn is owned by the parent; cfgInReg is
	// the first buffering stage; cfgOuts are owned by this router and
	// feed the children. The reverse path mirrors this.
	cfgIn     *sim.Reg[phit.ConfigWord]
	cfgInReg  *sim.Reg[phit.ConfigWord]
	cfgOuts   []*sim.Reg[phit.ConfigWord]
	respIns   []*sim.Reg[phit.Response]
	respMerge *sim.Reg[phit.Response]
	respOut   *sim.Reg[phit.Response]

	// forwarded counts valid words driven on any output (activity for
	// the energy model); outBusy attributes the same count to each
	// output port, so per-link slot occupancy can be compared against
	// the allocator's reservations.
	forwarded uint64
	outBusy   []uint64
}

// New creates a router with the given port counts, registers its state
// with s, and returns it. inWires are the link wires feeding each input
// port (may contain nils to be connected later via ConnectInput).
func New(s *sim.Simulator, name string, id int, numIn, numOut int, params Params) (*Router, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if numOut > cfgproto.MaxRouterPort+1 || numIn > cfgproto.MaxRouterPort+1 {
		return nil, fmt.Errorf("router %s: arity %d/%d exceeds configuration encoding limit %d",
			name, numIn, numOut, cfgproto.MaxRouterPort+1)
	}
	r := &Router{
		name:      name,
		id:        id,
		params:    params,
		inWires:   make([]*sim.Reg[phit.Flit], numIn),
		inRegs:    make([]*sim.Reg[phit.Flit], numIn),
		outWires:  make([]*sim.Reg[phit.Flit], numOut),
		outIdle:   make([]bool, numOut),
		outBusy:   make([]uint64, numOut),
		table:     slots.NewRouterTable(numOut, params.Wheel),
		cfgInReg:  sim.NewReg(s, phit.ConfigWord{}),
		respMerge: sim.NewReg(s, phit.Response{}),
		respOut:   sim.NewReg(s, phit.Response{}),
	}
	for i := range r.inRegs {
		r.inRegs[i] = sim.NewReg(s, phit.Idle())
	}
	for o := range r.outWires {
		r.outWires[o] = sim.NewReg(s, phit.Idle())
		r.outIdle[o] = true
	}
	r.dec = cfgproto.NewDecoder(id, params.Wheel, (*routerSink)(r))
	s.Add(r)
	return r, nil
}

// Name implements sim.Component.
func (r *Router) Name() string { return r.name }

// ID returns the configuration element ID.
func (r *Router) ID() int { return r.id }

// ConnectInput attaches the wire feeding input port i.
func (r *Router) ConnectInput(i int, wire *sim.Reg[phit.Flit]) {
	r.inWires[i] = wire
}

// OutputWire returns the wire driven by output port o, to be connected as
// the downstream element's input.
func (r *Router) OutputWire(o int) *sim.Reg[phit.Flit] { return r.outWires[o] }

// ConnectConfigIn attaches the forward configuration wire from the tree
// parent.
func (r *Router) ConnectConfigIn(wire *sim.Reg[phit.ConfigWord]) { r.cfgIn = wire }

// AddConfigChild allocates a forward wire toward a tree child and the
// reverse wire back from it; the child connects to both. Returns the
// forward wire; the caller passes respIn (the child's respOut).
func (r *Router) AddConfigChild(s *sim.Simulator) *sim.Reg[phit.ConfigWord] {
	w := sim.NewReg(s, phit.ConfigWord{})
	r.cfgOuts = append(r.cfgOuts, w)
	return w
}

// AddResponseChild attaches a child's reverse wire.
func (r *Router) AddResponseChild(wire *sim.Reg[phit.Response]) {
	r.respIns = append(r.respIns, wire)
}

// ResponseWire returns this router's reverse wire toward its tree parent.
func (r *Router) ResponseWire() *sim.Reg[phit.Response] { return r.respOut }

// Table exposes the slot table for inspection by tests and probes.
func (r *Router) Table() *slots.RouterTable { return r.table }

// Forwarded returns the number of valid words this router has driven on
// its outputs — the activity count the energy model multiplies by the
// per-traversal energy.
func (r *Router) Forwarded() uint64 { return r.forwarded }

// OutputBusy returns the number of valid words driven on output port o,
// the per-link slot-occupancy counter telemetry exports.
func (r *Router) OutputBusy(o int) uint64 { return r.outBusy[o] }

// NumOutputs returns the router's output port count.
func (r *Router) NumOutputs() int { return len(r.outWires) }

// Eval implements sim.Component.
func (r *Router) Eval(cycle uint64) {
	// Stage 1: latch input wires into the input registers.
	for i, w := range r.inWires {
		if w != nil {
			r.inRegs[i].Set(w.Get())
		} else {
			r.inRegs[i].Set(phit.Idle())
		}
	}

	// Stage 2: crossbar. The output registers present their values
	// during cycle+1, so the slot table is indexed by the slot of
	// cycle+1 (the output slot).
	outSlot := slots.SlotOfCycle(cycle+1, r.params.SlotWords, r.params.Wheel)
	for o := range r.outWires {
		// Bitset early-out: one occupancy-word test replaces the packed
		// selector decode for the (common) unreserved slots, and an
		// already-idle wire needs no re-drive at all.
		if !r.table.Occupied(o, outSlot) {
			if !r.outIdle[o] {
				r.outWires[o].Set(phit.Idle())
				r.outIdle[o] = true
			}
			continue
		}
		r.outIdle[o] = false
		in := r.table.Input(o, outSlot)
		if in >= len(r.inRegs) {
			r.outWires[o].Set(phit.Idle())
			continue
		}
		f := r.inRegs[in].Get()
		if f.Valid {
			r.forwarded++
			r.outBusy[o]++
		}
		r.outWires[o].Set(f)
	}

	// Configuration tree node: buffer twice per hop, feed the decoder
	// from the first stage.
	var inWord phit.ConfigWord
	if r.cfgIn != nil {
		inWord = r.cfgIn.Get()
	}
	r.cfgInReg.Set(inWord)
	for _, out := range r.cfgOuts {
		out.Set(r.cfgInReg.Get())
	}
	localResp := r.dec.Feed(r.cfgInReg.Get())

	// Reverse path: merge children and local response, buffered twice.
	merged := localResp
	for _, in := range r.respIns {
		merged = phit.Merge(merged, in.Get())
	}
	r.respMerge.Set(merged)
	r.respOut.Set(r.respMerge.Get())
}

// Commit implements sim.Component; all state lives in sim.Reg.
func (r *Router) Commit() {}

// Quiescence implements sim.Quiescer. The router is quiet when its data
// path carries only inert flits (idle, or the zero-credit carriers of
// settled open connections — those repeat every hyper-period and touch
// no counter: forwarded/outBusy move on Valid words only), its
// configuration-tree stage registers are empty, and its decoder is
// between transactions. Input wires are owned and accounted for
// upstream.
func (r *Router) Quiescence(now uint64) sim.Quiescence {
	for _, w := range r.outWires {
		if !w.Get().Inert() {
			return sim.Quiescence{}
		}
	}
	for _, reg := range r.inRegs {
		if !reg.Get().Inert() {
			return sim.Quiescence{}
		}
	}
	if r.cfgInReg.Get() != (phit.ConfigWord{}) {
		return sim.Quiescence{}
	}
	for _, out := range r.cfgOuts {
		if out.Get() != (phit.ConfigWord{}) {
			return sim.Quiescence{}
		}
	}
	if r.respMerge.Get() != (phit.Response{}) || r.respOut.Get() != (phit.Response{}) {
		return sim.Quiescence{}
	}
	if r.dec.Busy() {
		return sim.Quiescence{}
	}
	return sim.Quiescence{Quiet: true}
}

// routerSink adapts the router to cfgproto.Sink.
type routerSink Router

func (rs *routerSink) ApplySlots(mask slots.Mask, spec cfgproto.PortSpec) {
	r := (*Router)(rs)
	if spec.ForNI {
		return // malformed: NI spec addressed to a router; ignore
	}
	if spec.Out < 0 || spec.Out >= r.table.NumOutputs() {
		return // out-of-range output: drop, as hardware would
	}
	_ = r.table.Set(spec.Out, mask, spec.In)
}

func (rs *routerSink) WriteReg(reg, value uint8) {
	// Routers hold no writable registers beyond the slot table.
}

func (rs *routerSink) ReadReg(reg uint8) (uint8, bool) {
	return 0, false
}
