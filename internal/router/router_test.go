package router

import (
	"testing"
	"testing/quick"

	"daelite/internal/cfgproto"
	"daelite/internal/phit"
	"daelite/internal/sim"
	"daelite/internal/slots"
)

func params() Params { return Params{Wheel: 8, SlotWords: 2} }

// driver drives a wire with a programmed sequence of flits.
type driver struct {
	wire *sim.Reg[phit.Flit]
	// at[cycle+1] is the value the wire should present during that
	// cycle.
	at map[uint64]phit.Flit
}

func (d *driver) Name() string { return "driver" }
func (d *driver) Eval(c uint64) {
	if f, ok := d.at[c+1]; ok {
		d.wire.Set(f)
	} else {
		d.wire.Set(phit.Idle())
	}
}
func (d *driver) Commit() {}

func newRouter(t *testing.T, s *sim.Simulator, numIn, numOut int) *Router {
	t.Helper()
	r, err := New(s, "R", 1, numIn, numOut, params())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRouterValidation(t *testing.T) {
	s := sim.New()
	if _, err := New(s, "R", 1, 3, 3, Params{Wheel: 0, SlotWords: 2}); err == nil {
		t.Fatal("zero wheel accepted")
	}
	if _, err := New(s, "R", 1, 3, 3, Params{Wheel: 8, SlotWords: 0}); err == nil {
		t.Fatal("zero slot words accepted")
	}
	if _, err := New(s, "R", 1, 8, 8, params()); err == nil {
		t.Fatal("arity beyond config encoding accepted")
	}
}

// TestBlindTwoCycleForwarding pins the hop timing: a flit on the input
// wire during slot s appears on the programmed output wire exactly two
// cycles later (slot s+1), regardless of its contents.
func TestBlindTwoCycleForwarding(t *testing.T) {
	s := sim.New()
	r := newRouter(t, s, 2, 2)
	in := sim.NewReg(s, phit.Idle())
	r.ConnectInput(0, in)
	// Program output 1 to take input 0 during slot 3 (the output slot
	// for data arriving in slot 2).
	if err := r.Table().Set(1, slots.MaskOf(8, 3), 0); err != nil {
		t.Fatal(err)
	}
	d := &driver{wire: in, at: map[uint64]phit.Flit{
		4: {Valid: true, Data: 0xAA}, // slot 2, word 0
		5: {Valid: true, Data: 0xBB}, // slot 2, word 1
	}}
	s.Add(d)
	var got []phit.Flit
	s.AddProbe(func(c uint64) {
		if f := r.OutputWire(1).Get(); f.Valid {
			got = append(got, f)
		}
		if f := r.OutputWire(0).Get(); f.Valid {
			t.Fatalf("unprogrammed output drove data at cycle %d", c)
		}
	})
	// Run exactly one wheel plus margin; the outputs are at cycles 6,7.
	for c := uint64(0); c < 16; c++ {
		s.Step()
		switch c + 1 {
		case 6:
			if len(got) != 1 || got[0].Data != 0xAA {
				t.Fatalf("cycle 6: got %v", got)
			}
		case 7:
			if len(got) != 2 || got[1].Data != 0xBB {
				t.Fatalf("cycle 7: got %v", got)
			}
		}
	}
	if len(got) != 2 {
		t.Fatalf("forwarded %d words, want 2", len(got))
	}
}

// TestMulticastFanOut: two outputs naming the same input in the same slot
// both carry the data (Fig. 7's router mechanism).
func TestMulticastFanOut(t *testing.T) {
	s := sim.New()
	r := newRouter(t, s, 2, 3)
	in := sim.NewReg(s, phit.Idle())
	r.ConnectInput(1, in)
	for _, out := range []int{0, 2} {
		if err := r.Table().Set(out, slots.MaskOf(8, 2), 1); err != nil {
			t.Fatal(err)
		}
	}
	s.Add(&driver{wire: in, at: map[uint64]phit.Flit{
		2: {Valid: true, Data: 0x77}, // slot 1 word 0 on the input wire
	}})
	seen := map[int]bool{}
	s.AddProbe(func(c uint64) {
		for _, out := range []int{0, 1, 2} {
			if f := r.OutputWire(out).Get(); f.Valid {
				if f.Data != 0x77 {
					t.Fatalf("output %d corrupted: %v", out, f)
				}
				seen[out] = true
			}
		}
	})
	s.Run(8)
	if !seen[0] || !seen[2] {
		t.Fatalf("multicast outputs missing: %v", seen)
	}
	if seen[1] {
		t.Fatal("unprogrammed output carried data")
	}
}

// TestIdleInputsStayIdle: a router with an empty table never drives
// anything.
func TestIdleInputsStayIdle(t *testing.T) {
	s := sim.New()
	r := newRouter(t, s, 3, 3)
	in := sim.NewReg(s, phit.Idle())
	r.ConnectInput(0, in)
	s.Add(&driver{wire: in, at: map[uint64]phit.Flit{
		2: {Valid: true, Data: 1}, 3: {Valid: true, Data: 2},
	}})
	s.AddProbe(func(uint64) {
		for o := 0; o < 3; o++ {
			if r.OutputWire(o).Get().Valid {
				t.Fatal("empty table forwarded data")
			}
		}
	})
	s.Run(20)
}

// TestConfigSubmoduleUpdatesTable feeds a path set-up packet through the
// router's configuration port and checks the slot table.
func TestConfigSubmoduleUpdatesTable(t *testing.T) {
	s := sim.New()
	r := newRouter(t, s, 3, 3)
	cfg := sim.NewReg(s, phit.ConfigWord{})
	r.ConnectConfigIn(cfg)
	pkt := cfgproto.PathSetup{
		Mask:  slots.MaskOf(8, 2, 6),
		Pairs: []cfgproto.Pair{{Element: 1, Spec: cfgproto.RouterSpec(2, 0)}},
	}
	words, err := pkt.Words()
	if err != nil {
		t.Fatal(err)
	}
	// Drive one word per cycle.
	i := 0
	s.Add(&sim.Func{Label: "cfg-driver", OnEval: func(uint64) {
		if i < len(words) {
			cfg.Set(words[i])
			i++
		} else {
			cfg.Set(phit.ConfigWord{})
		}
	}})
	s.Run(uint64(len(words) + 4))
	if got := r.Table().Input(0, 2); got != 2 {
		t.Fatalf("table[0][2] = %d, want 2", got)
	}
	if got := r.Table().Input(0, 6); got != 2 {
		t.Fatalf("table[0][6] = %d, want 2", got)
	}
	if got := r.Table().Input(0, 3); got != slots.NoInput {
		t.Fatal("config leaked to other slots")
	}
	// Tear down slot 2 only.
	down := cfgproto.PathSetup{
		Mask:  slots.MaskOf(8, 2),
		Pairs: []cfgproto.Pair{{Element: 1, Spec: cfgproto.RouterSpec(slots.NoInput, 0)}},
	}
	words, _ = down.Words()
	i = 0
	s.Run(uint64(len(words) + 4))
	if got := r.Table().Input(0, 2); got != slots.NoInput {
		t.Fatal("teardown failed")
	}
	if got := r.Table().Input(0, 6); got != 2 {
		t.Fatal("teardown hit the wrong slot")
	}
}

// TestConfigIgnoresOtherElements: packets for other IDs leave the table
// untouched; malformed NI specs addressed to a router are dropped.
func TestConfigIgnoresOtherElements(t *testing.T) {
	s := sim.New()
	r := newRouter(t, s, 3, 3)
	cfg := sim.NewReg(s, phit.ConfigWord{})
	r.ConnectConfigIn(cfg)
	other := cfgproto.PathSetup{
		Mask:  slots.MaskOf(8, 1),
		Pairs: []cfgproto.Pair{{Element: 9, Spec: cfgproto.RouterSpec(1, 1)}},
	}
	w1, _ := other.Words()
	// An NI-layout spec addressed to this router (configuration error):
	// the router decodes it with the router layout. NISpec(send, enable,
	// ch 0) encodes as in=4+, out=0... the defensive check is that
	// out-of-range ports are dropped, which we exercise with out=7 via a
	// crafted word below; here we check the foreign-ID case.
	i := 0
	s.Add(&sim.Func{Label: "cfg-driver", OnEval: func(uint64) {
		if i < len(w1) {
			cfg.Set(w1[i])
			i++
		} else {
			cfg.Set(phit.ConfigWord{})
		}
	}})
	s.Run(uint64(len(w1) + 4))
	for o := 0; o < 3; o++ {
		for sl := 0; sl < 8; sl++ {
			if r.Table().Input(o, sl) != slots.NoInput {
				t.Fatal("foreign packet modified the table")
			}
		}
	}
}

// TestConfigBroadcastChain: a chain of three routers forwards
// configuration words with two cycles of latency per hop, and all of them
// decode the same packet.
func TestConfigBroadcastChain(t *testing.T) {
	s := sim.New()
	r1 := newRouter(t, s, 2, 2)
	r2, err := New(s, "R2", 2, 2, 2, params())
	if err != nil {
		t.Fatal(err)
	}
	r3, err := New(s, "R3", 3, 2, 2, params())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.NewReg(s, phit.ConfigWord{})
	r1.ConnectConfigIn(cfg)
	r2.ConnectConfigIn(r1.AddConfigChild(s))
	r3.ConnectConfigIn(r2.AddConfigChild(s))
	r1.AddResponseChild(r2.ResponseWire())
	r2.AddResponseChild(r3.ResponseWire())

	// One packet configuring all three routers at rotated slots.
	pkt := cfgproto.PathSetup{
		Mask: slots.MaskOf(8, 5),
		Pairs: []cfgproto.Pair{
			{Element: 3, Spec: cfgproto.RouterSpec(0, 1)},
			{Element: 2, Spec: cfgproto.RouterSpec(1, 0)},
			{Element: 1, Spec: cfgproto.RouterSpec(0, 0)},
		},
	}
	words, _ := pkt.Words()
	i := 0
	s.Add(&sim.Func{Label: "cfg-driver", OnEval: func(uint64) {
		if i < len(words) {
			cfg.Set(words[i])
			i++
		} else {
			cfg.Set(phit.ConfigWord{})
		}
	}})
	// Words traverse 2 extra cycles per tree hop.
	s.Run(uint64(len(words) + 2*3 + 4))
	if r3.Table().Input(1, 5) != 0 {
		t.Fatal("r3 not configured")
	}
	if r2.Table().Input(0, 4) != 1 {
		t.Fatal("r2 not configured at rotated slot")
	}
	if r1.Table().Input(0, 3) != 0 {
		t.Fatal("r1 not configured at doubly rotated slot")
	}
}

// TestUnconnectedInputsReadIdle: inputs left unconnected behave as idle
// links.
func TestUnconnectedInputsReadIdle(t *testing.T) {
	s := sim.New()
	r := newRouter(t, s, 2, 2)
	if err := r.Table().Set(0, slots.MaskOf(8, 0, 1, 2, 3, 4, 5, 6, 7), 1); err != nil {
		t.Fatal(err)
	}
	s.AddProbe(func(uint64) {
		if r.OutputWire(0).Get().Valid {
			t.Fatal("unconnected input produced data")
		}
	})
	s.Run(20)
}

func TestRouterAccessors(t *testing.T) {
	s := sim.New()
	r := newRouter(t, s, 2, 2)
	if r.Name() != "R" || r.ID() != 1 {
		t.Fatal("accessors wrong")
	}
}

// TestGoldenModelEquivalence verifies the pipelined router against a
// plain functional reference: for random slot tables and random input
// streams, the router's outputs must equal the reference's prediction
// (table lookup on the output slot, input delayed by two cycles) on every
// cycle. This is the classic golden-model check an RTL implementation
// would face.
func TestGoldenModelEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		s := sim.New()
		const numIn, numOut = 3, 3
		r, err := New(s, "R", 1, numIn, numOut, params())
		if err != nil {
			return false
		}
		// Random table.
		for o := 0; o < numOut; o++ {
			for sl := 0; sl < 8; sl++ {
				in := rng.Intn(numIn + 1)
				if in < numIn {
					_ = r.Table().Set(o, slots.MaskOf(8, sl), in)
				}
			}
		}
		// Random input streams, recorded per cycle.
		wires := make([]*sim.Reg[phit.Flit], numIn)
		history := make([][]phit.Flit, numIn) // history[i][c] = wire value during cycle c
		for i := range wires {
			wires[i] = sim.NewReg(s, phit.Idle())
			r.ConnectInput(i, wires[i])
			history[i] = []phit.Flit{{}} // cycle 0: initial idle
		}
		s.Add(&sim.Func{Label: "stim", OnEval: func(c uint64) {
			for i := range wires {
				var fl phit.Flit
				if rng.Intn(2) == 0 {
					fl = phit.Flit{Valid: true, Data: phit.Word(rng.Uint64())}
				}
				wires[i].Set(fl)
				history[i] = append(history[i], fl)
			}
		}})
		ok := true
		s.AddProbe(func(c uint64) {
			// Output during cycle c reflects input during cycle c-2
			// under the table entry of slot(c).
			if c < 2 {
				return
			}
			slot := slots.SlotOfCycle(c, 2, 8)
			for o := 0; o < numOut; o++ {
				want := phit.Idle()
				if in := r.Table().Input(o, slot); in != slots.NoInput {
					want = history[in][c-2]
				}
				if got := r.OutputWire(o).Get(); got != want {
					ok = false
				}
			}
		})
		s.Run(64)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
