package dimension

import (
	"testing"

	"daelite/internal/alloc"
	"daelite/internal/analysis"
	"daelite/internal/slots"
	"daelite/internal/topology"
)

func mesh(t testing.TB) *topology.Mesh {
	t.Helper()
	m, err := topology.NewMesh(topology.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDimensionPicksSmallestWheel(t *testing.T) {
	m := mesh(t)
	// A single 1/8 bandwidth demand fits the smallest wheel.
	res, err := Dimension(m.Graph, []Requirement{
		{Name: "a", Src: m.NI(0, 0, 0), Dst: m.NI(2, 2, 0), Bandwidth: 0.125},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wheel != 8 {
		t.Fatalf("wheel = %d, want 8", res.Wheel)
	}
	asg := res.Assignments[0]
	if asg.Slots != 1 {
		t.Fatalf("slots = %d, want 1", asg.Slots)
	}
	if asg.GuaranteedBandwidth < 0.125 {
		t.Fatalf("guaranteed %v < required 0.125", asg.GuaranteedBandwidth)
	}
}

func TestDimensionGrowsWheelForFineGrain(t *testing.T) {
	m := mesh(t)
	// 1/32 of a link cannot be granted on an 8- or 16-slot wheel without
	// over-provisioning bandwidth; any wheel technically satisfies the
	// bandwidth (ceil rounds up), so add enough competing demands that
	// only the finer wheel has room.
	var reqs []Requirement
	reqs = append(reqs, Requirement{Name: "fine", Src: m.NI(0, 0, 0), Dst: m.NI(2, 0, 0), Bandwidth: 1.0 / 32})
	for i := 0; i < 7; i++ {
		reqs = append(reqs, Requirement{
			Name: "bulk", Src: m.NI(0, 0, 0), Dst: m.NI(2, 2, 0), Bandwidth: 0.118,
		})
	}
	res, err := Dimension(m.Graph, reqs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// On an 8-slot wheel each bulk demand rounds up to 1 slot (0.125)
	// and the fine demand to 1 slot: 8 slots needed on the shared source
	// link plus the reverse channels -> does not fit; 16 gives the same
	// rounding (2 slots each = 0.125): still 15+... the dimensioner must
	// find some wheel; assert all guarantees hold wherever it landed.
	for _, asg := range res.Assignments {
		if asg.GuaranteedBandwidth < asg.Requirement.Bandwidth {
			t.Fatalf("%s: guaranteed %v < required %v", asg.Requirement.Name,
				asg.GuaranteedBandwidth, asg.Requirement.Bandwidth)
		}
	}
	if err := alloc.Verify(m.Graph, res.Wheel, collect(res), nil); err != nil {
		t.Fatal(err)
	}
}

func collect(res *Result) []*alloc.Unicast {
	var us []*alloc.Unicast
	for _, a := range res.Assignments {
		us = append(us, a.Alloc)
	}
	return us
}

func TestLatencyConstraintAddsSlots(t *testing.T) {
	m := mesh(t)
	// Unconstrained: 1 slot suffices for the bandwidth.
	loose, err := Dimension(m.Graph, []Requirement{
		{Name: "loose", Src: m.NI(0, 0, 0), Dst: m.NI(2, 2, 0), Bandwidth: 0.05},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Assignments[0].Slots != 1 {
		t.Fatalf("loose slots = %d", loose.Assignments[0].Slots)
	}
	// A tight latency bound forces more slots (smaller gaps) even
	// though the bandwidth demand is identical.
	tight, err := Dimension(m.Graph, []Requirement{
		{Name: "tight", Src: m.NI(0, 0, 0), Dst: m.NI(2, 2, 0), Bandwidth: 0.05, MaxLatency: 26},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	asg := tight.Assignments[0]
	if asg.Slots <= 1 {
		t.Fatalf("tight slots = %d, want > 1", asg.Slots)
	}
	if asg.WorstCaseLatency > 26 {
		t.Fatalf("worst case %d > bound 26", asg.WorstCaseLatency)
	}
}

func TestInfeasibleLatency(t *testing.T) {
	m := mesh(t)
	// Traversal alone exceeds the bound: no slot count can help.
	_, err := Dimension(m.Graph, []Requirement{
		{Name: "impossible", Src: m.NI(0, 0, 0), Dst: m.NI(2, 2, 0), Bandwidth: 0.1, MaxLatency: 8},
	}, Config{})
	if err == nil {
		t.Fatal("impossible latency bound accepted")
	}
}

func TestBandwidthValidation(t *testing.T) {
	m := mesh(t)
	for _, bw := range []float64{0, -0.5, 1.5} {
		_, err := Dimension(m.Graph, []Requirement{
			{Name: "bad", Src: m.NI(0, 0, 0), Dst: m.NI(1, 0, 0), Bandwidth: bw},
		}, Config{})
		if err == nil {
			t.Fatalf("bandwidth %v accepted", bw)
		}
	}
	if _, err := Dimension(m.Graph, nil, Config{}); err == nil {
		t.Fatal("empty requirements accepted")
	}
}

// TestPickSpreadReducesGap pins the spread selector: for the same slot
// count, evenly spread slots have a strictly smaller worst-case gap than
// clustered ones whenever the wheel is loaded asymmetrically.
func TestPickSpreadReducesGap(t *testing.T) {
	full := slots.Mask{Bits: 1<<16 - 1, Size: 16}
	spread := alloc.PickSpread(full, 4)
	if spread.Count() != 4 {
		t.Fatalf("picked %d slots", spread.Count())
	}
	gapSpread := analysis.MaxSlotGapCycles(spread, 2)
	clustered := slots.MaskOf(16, 0, 1, 2, 3)
	gapClustered := analysis.MaxSlotGapCycles(clustered, 2)
	if gapSpread >= gapClustered {
		t.Fatalf("spread gap %d not below clustered gap %d", gapSpread, gapClustered)
	}
	// Ideal spacing on an empty wheel: 16/4 = 4 slots = 8 cycles.
	if gapSpread != 8 {
		t.Fatalf("spread gap = %d, want 8", gapSpread)
	}
}

func TestPickSpreadSubsetAndBounds(t *testing.T) {
	cand := slots.MaskOf(16, 1, 2, 3, 9, 10, 11)
	got := alloc.PickSpread(cand, 2)
	if got.Count() != 2 {
		t.Fatalf("picked %d", got.Count())
	}
	for _, s := range got.Slots() {
		if !cand.Has(s) {
			t.Fatalf("picked non-candidate slot %d", s)
		}
	}
	// The two picks land in different clusters.
	gs := got.Slots()
	if (gs[0] < 4) == (gs[1] < 4) {
		t.Fatalf("spread picks clustered: %v", gs)
	}
	// n >= candidates returns all, n <= 0 none.
	if alloc.PickSpread(cand, 99) != cand {
		t.Fatal("overask did not return all")
	}
	if !alloc.PickSpread(cand, 0).Empty() {
		t.Fatal("zero ask not empty")
	}
}

// TestDimensionedPlatformMeetsBounds is the end-to-end check: a
// dimensioned schedule, opened on a live platform with the dimensioned
// slot masks, must keep every measured latency within its computed bound.
func TestDimensionedGuaranteesConsistent(t *testing.T) {
	m := mesh(t)
	reqs := []Requirement{
		{Name: "video", Src: m.NI(0, 0, 0), Dst: m.NI(2, 2, 0), Bandwidth: 0.25, MaxLatency: 40},
		{Name: "ctrl", Src: m.NI(1, 0, 0), Dst: m.NI(1, 2, 0), Bandwidth: 0.0625, MaxLatency: 60},
		{Name: "bulk", Src: m.NI(2, 0, 0), Dst: m.NI(0, 2, 0), Bandwidth: 0.3},
	}
	res, err := Dimension(m.Graph, reqs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, asg := range res.Assignments {
		if asg.GuaranteedBandwidth+1e-12 < asg.Requirement.Bandwidth {
			t.Fatalf("%s: bandwidth shortfall", asg.Requirement.Name)
		}
		if b := asg.Requirement.MaxLatency; b > 0 && asg.WorstCaseLatency > b {
			t.Fatalf("%s: latency %d > %d", asg.Requirement.Name, asg.WorstCaseLatency, b)
		}
	}
	if err := alloc.Verify(m.Graph, res.Wheel, collect(res), nil); err != nil {
		t.Fatal(err)
	}
}
