package dimension_test

import (
	"fmt"

	"daelite/internal/dimension"
	"daelite/internal/topology"
)

// Example dimensions a small platform from application requirements: the
// flow picks the smallest wheel and a slot schedule whose guarantees
// cover every demand.
func Example() {
	m, _ := topology.NewMesh(topology.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1})
	res, err := dimension.Dimension(m.Graph, []dimension.Requirement{
		{Name: "video", Src: m.NI(0, 0, 0), Dst: m.NI(2, 2, 0), Bandwidth: 0.25, MaxLatency: 40},
		{Name: "ctrl", Src: m.NI(1, 0, 0), Dst: m.NI(1, 2, 0), Bandwidth: 0.05},
	}, dimension.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("wheel:", res.Wheel)
	for _, a := range res.Assignments {
		fmt.Printf("%s: %d slots, %.4f words/cycle, worst-case %d cycles\n",
			a.Requirement.Name, a.Slots, a.GuaranteedBandwidth, a.WorstCaseLatency)
	}
	// Output:
	// wheel: 8
	// video: 2 slots, 0.2500 words/cycle, worst-case 22 cycles
	// ctrl: 1 slots, 0.1250 words/cycle, worst-case 26 cycles
}
