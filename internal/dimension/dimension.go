// Package dimension implements the network dimensioning step of the
// design flow the paper leverages ("for network dimensioning ... we use
// the standard Æthereal tools"): applications state *requirements* —
// words-per-cycle bandwidth and worst-case latency per connection — and
// the dimensioner chooses the smallest TDM wheel and per-connection slot
// counts/positions that satisfy all of them simultaneously, driving the
// contention-free allocator with spread slot selection for the
// latency-constrained connections.
package dimension

import (
	"fmt"
	"math"

	"daelite/internal/alloc"
	"daelite/internal/analysis"
	"daelite/internal/slots"
	"daelite/internal/topology"
)

// Requirement is one application-level connection demand.
type Requirement struct {
	Name string
	Src  topology.NodeID
	Dst  topology.NodeID
	// Bandwidth is the required throughput in words per cycle (a slot
	// wheel share).
	Bandwidth float64
	// MaxLatency bounds the worst-case end-to-end latency in cycles
	// (scheduling wait + serialization + traversal); 0 means
	// unconstrained.
	MaxLatency int
	// Multipath permits splitting (only for latency-unconstrained
	// requirements; multipath spreads arrivals).
	Multipath bool
}

// Assignment is the dimensioner's answer for one requirement.
type Assignment struct {
	Requirement Requirement
	Slots       int
	Alloc       *alloc.Unicast
	// GuaranteedBandwidth and WorstCaseLatency are the achieved
	// guarantees.
	GuaranteedBandwidth float64
	WorstCaseLatency    int
}

// Result is a complete dimensioning outcome.
type Result struct {
	Wheel       int
	Assignments []*Assignment
	Allocator   *alloc.Allocator
}

// Config bounds the search.
type Config struct {
	// WheelCandidates are tried in order; the first wheel satisfying
	// every requirement wins. Default: 8, 16, 32, 64.
	WheelCandidates []int
	// SlotWords is the slot length in words (2 for daelite).
	SlotWords int
}

func (c Config) withDefaults() Config {
	if len(c.WheelCandidates) == 0 {
		c.WheelCandidates = []int{8, 16, 32, 64}
	}
	if c.SlotWords <= 0 {
		c.SlotWords = 2
	}
	return c
}

// Dimension finds the smallest candidate wheel on which every requirement
// can be allocated with its bandwidth and latency guarantees met.
func Dimension(g *topology.Graph, reqs []Requirement, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(reqs) == 0 {
		return nil, fmt.Errorf("dimension: no requirements")
	}
	var lastErr error
	for _, wheel := range cfg.WheelCandidates {
		res, err := tryWheel(g, reqs, wheel, cfg.SlotWords)
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("dimension: no candidate wheel fits: %w", lastErr)
}

func tryWheel(g *topology.Graph, reqs []Requirement, wheel, slotWords int) (*Result, error) {
	a := alloc.New(g, wheel)
	res := &Result{Wheel: wheel, Allocator: a}
	for _, req := range reqs {
		asg, err := place(g, a, req, wheel, slotWords)
		if err != nil {
			return nil, fmt.Errorf("wheel %d: %q: %w", wheel, req.Name, err)
		}
		res.Assignments = append(res.Assignments, asg)
	}
	return res, nil
}

// place allocates one requirement, growing the slot count until both the
// bandwidth and the latency guarantee hold (more slots reduce the
// worst-case gap).
func place(g *topology.Graph, a *alloc.Allocator, req Requirement, wheel, slotWords int) (*Assignment, error) {
	if req.Bandwidth <= 0 || req.Bandwidth > 1 {
		return nil, fmt.Errorf("dimension: bandwidth %v out of (0, 1]", req.Bandwidth)
	}
	minSlots := int(math.Ceil(req.Bandwidth * float64(wheel)))
	if minSlots < 1 {
		minSlots = 1
	}
	opts := alloc.Options{Multipath: req.Multipath, MaxDetour: 0, Spread: req.MaxLatency > 0}
	if req.Multipath {
		opts.MaxDetour = 2
	}
	var lastErr error
	for nslots := minSlots; nslots <= wheel; nslots++ {
		u, err := a.Unicast(req.Src, req.Dst, nslots, opts)
		if err != nil {
			lastErr = err
			break // more slots cannot help a capacity failure
		}
		wc := worstCase(u, slotWords)
		if req.MaxLatency > 0 && wc > req.MaxLatency {
			// Not enough slot density for the latency bound: release
			// and retry with one more slot.
			a.ReleaseUnicast(u)
			lastErr = fmt.Errorf("dimension: worst-case latency %d > bound %d with %d slots", wc, req.MaxLatency, nslots)
			continue
		}
		return &Assignment{
			Requirement:         req,
			Slots:               nslots,
			Alloc:               u,
			GuaranteedBandwidth: float64(u.SlotCount()) / float64(wheel),
			WorstCaseLatency:    wc,
		}, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("dimension: wheel exhausted")
	}
	return nil, lastErr
}

// worstCase computes the end-to-end worst-case latency of an allocation:
// for multipath, the slowest path with only its own slots counted.
func worstCase(u *alloc.Unicast, slotWords int) int {
	worst := 0
	for _, pa := range u.Paths {
		wc := analysis.WorstCaseLatency(pa.InjectSlots, slotWords, len(pa.Path))
		if wc > worst {
			worst = wc
		}
	}
	return worst
}

// MaxGap returns the worst-case slot gap of a mask in cycles — exposed so
// reports can show how spread selection improved the schedule.
func MaxGap(m slots.Mask, slotWords int) int {
	return analysis.MaxSlotGapCycles(m, slotWords)
}
