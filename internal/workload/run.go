package workload

import (
	"fmt"

	"daelite/internal/conformance"
	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/sim"
	"daelite/internal/spec"
	"daelite/internal/telemetry"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

// RunOptions parameterizes one pack execution.
type RunOptions struct {
	// Workers selects the kernel worker count (0: the spec's, then
	// GOMAXPROCS). Ignored when Platform is supplied.
	Workers int
	// FastForward arms model-guided fast-forwarding. Ignored when
	// Platform is supplied.
	FastForward bool
	// Platform, when non-nil, is a prebuilt platform (see BuildPlatform)
	// the caller keeps ownership of — exporters stay attached and the
	// kernel is not shut down. When nil, Run builds and owns one.
	Platform *core.Platform
	// Registry receives the invariant checkers' counters and events; nil
	// allocates a private one.
	Registry *telemetry.Registry
	// ChaosEvery plants a link-down fault in every Nth phase (1: every
	// phase; 0: off) and repairs around it mid-phase. Chaos runs skip
	// the exact-latency and occupancy-restore differentials — a repair
	// legitimately moves reservations — but keep the invariant checkers
	// as hard failures and stay bit-deterministic.
	ChaosEvery int
}

// PhaseResult is the measured outcome of one phase.
type PhaseResult struct {
	Name  string
	Kind  string
	Layer int
	// Requested/Opened/NoFit count the phase's admission outcomes.
	Requested, Opened, NoFit int
	// Words is the payload volume actually offered (admitted connections
	// only, summed per destination); Delivered is what the sinks got.
	Words, Delivered uint64
	// MACs and MMemWords carry the compiled compute/memory activity for
	// energy accounting.
	MACs, MMemWords uint64
	// StartCycle/Cycles bound the phase on the platform's timeline;
	// SetupCycles is where admission configuration settled and
	// DrainCycles where the drive loop ended, both relative to
	// StartCycle.
	StartCycle, SetupCycles, Cycles, DrainCycles uint64
	// Forwarded is the router-traversal count the phase added — the
	// activity term the energy model prices.
	Forwarded uint64
	// Drained reports whether every bounded source finished and every
	// expected word arrived within the closed-form budget.
	Drained bool
	// Faulted/Repaired describe chaos activity during the phase.
	Faulted  bool
	Repaired int
	// Failures lists this phase's differential-check failures.
	Failures []string
}

// Result is the outcome of a pack run.
type Result struct {
	Pack        string
	Workers     int
	FastForward bool
	Phases      []PhaseResult
	// Opened counts admitted connections across all phases; Delivered
	// sums every sink.
	Opened    int
	Delivered uint64
	// Violations is the invariant checkers' total count.
	Violations uint64
	// Fingerprint folds every NI output flit, delivery counts and
	// checker verdicts — the bit-exactness witness across worker counts
	// and fast-forward modes.
	Fingerprint uint64
	// Skipped counts fast-forwarded cycles (outside the fingerprint).
	Skipped  uint64
	Failures []string
}

// Passed reports whether the run was violation- and divergence-free.
func (r *Result) Passed() bool { return r.Violations == 0 && len(r.Failures) == 0 }

// Summary renders a one-line verdict.
func (r *Result) Summary() string {
	verdict := "PASS"
	if !r.Passed() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s: %s phases=%d opened=%d delivered=%d violations=%d failures=%d fingerprint=%016x skipped=%d",
		verdict, r.Pack, len(r.Phases), r.Opened, r.Delivered, r.Violations, len(r.Failures), r.Fingerprint, r.Skipped)
}

// BuildPlatform instantiates the pack's platform with the given kernel
// width and execution mode, without opening any connections.
func (c *Compiled) BuildPlatform(workers int, fastForward bool) (*core.Platform, error) {
	ps := c.Platform
	if workers != 0 {
		ps.Params.Workers = workers
	}
	p, err := ps.BuildPlatform()
	if err != nil {
		return nil, err
	}
	if fastForward {
		p.EnableFastForward()
	}
	return p, nil
}

// phaseBudget is the closed-form cycle budget for draining a phase: the
// slowest connection needs Words×wheel/slots cycles at its reserved
// bandwidth, padded by the model's ramp slack. The budget is a pure
// function of the compiled pack, so every worker count and execution
// mode makes the give-up decision at the same cycle.
func phaseBudget(ph *Phase, wheel int) uint64 {
	var worst uint64
	for _, cn := range ph.Conns {
		slots := cn.Slots
		if slots < 1 {
			slots = 1
		}
		if t := cn.Words * uint64(wheel) / uint64(slots); t > worst {
			worst = t
		}
	}
	return 4*worst + 8192
}

// Run executes a compiled pack phase by phase with the conformance
// checkers attached, checking every phase against the analytical model:
// link occupancy bit-for-bit, exact single-path and multicast latency,
// complete delivery within the closed-form bandwidth bound, and
// occupancy restoration after teardown. The entire run folds into a
// fingerprint that must be bit-identical across kernel worker counts and
// fast-forward on/off.
func Run(c *Compiled, opt RunOptions) (*Result, error) {
	p := opt.Platform
	if p == nil {
		var err error
		p, err = c.BuildPlatform(opt.Workers, opt.FastForward)
		if err != nil {
			return nil, err
		}
		defer p.Sim.Shutdown()
	}
	reg := opt.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	ck := conformance.Attach(p, reg, conformance.Options{LineRate: true})
	model := conformance.NewModel(p)
	res := &Result{Pack: c.Name(), Workers: opt.Workers, FastForward: opt.FastForward}

	var fp sim.Fingerprint
	for _, id := range p.Mesh.AllNIs {
		w := p.NI(id).OutputWire()
		p.Sim.AddProbe(func(cycle uint64) {
			if f := w.Get(); f.Valid {
				fp = fp.Mix(uint64(f.Data))
				fp = fp.Mix(cycle)
			}
		})
	}

	node := func(co spec.Coord) topology.NodeID { return p.Mesh.NI(co.X, co.Y, co.NI) }
	totalForwarded := func() uint64 {
		var n uint64
		for _, rt := range p.Routers {
			n += rt.Forwarded()
		}
		return n
	}
	wheel := p.Params.Wheel
	var hmon *core.HealthMonitor

	for pi := range c.Phases {
		ph := &c.Phases[pi]
		pr := PhaseResult{
			Name: ph.Name, Kind: ph.Kind, Layer: ph.Layer,
			Requested: len(ph.Conns), MACs: ph.MACs, MMemWords: ph.MMemWords,
			StartCycle: p.Cycle(),
		}
		fail := func(format string, args ...interface{}) {
			pr.Failures = append(pr.Failures, fmt.Sprintf("phase %s: %s", ph.Name, fmt.Sprintf(format, args...)))
		}
		preFP := p.Alloc.Fingerprint()
		startForwarded := totalForwarded()

		// Admission: the whole phase opens as one batch, exactly like an
		// application would request it.
		specs := make([]core.ConnectionSpec, len(ph.Conns))
		for i, cn := range ph.Conns {
			cs := core.ConnectionSpec{Src: node(cn.Src), SlotsFwd: cn.Slots}
			if cn.Dst != nil {
				cs.Dst = node(*cn.Dst)
			}
			for _, d := range cn.Dsts {
				cs.Dsts = append(cs.Dsts, node(d))
			}
			specs[i] = cs
		}
		conns, errs := p.OpenBatch(specs)
		for i := range conns {
			if conns[i] == nil || errs[i] != nil {
				conns[i] = nil
				pr.NoFit++ // interior-path contention; the nominal demand is admissible
				continue
			}
			pr.Opened++
		}
		if _, err := p.CompleteConfig(5_000_000); err != nil {
			return nil, fmt.Errorf("workload: phase %s: settle setup: %w", ph.Name, err)
		}
		live := make([]*core.Connection, 0, pr.Opened)
		for _, cn := range conns {
			if cn == nil {
				continue
			}
			if cn.State == core.Opening {
				cn.State = core.Open
			}
			live = append(live, cn)
		}
		pr.SetupCycles = p.Cycle() - pr.StartCycle
		ck.Resync()

		// Differential 1: the allocator's per-link occupancy must equal
		// the model's closed-form prediction bit for bit.
		occ := model.LinkOccupancy(live)
		for _, l := range p.Mesh.Links() {
			want := occ[l.ID]
			got := p.Alloc.LinkOccupancy(l.ID)
			if got.Bits != want.Bits {
				fail("link %d occupancy: allocator %#x vs model %#x", l.ID, got.Bits, want.Bits)
			}
		}

		// Traffic: every admitted connection gets a bounded saturating
		// source and one sink per destination.
		type phaseSinks struct {
			req   *ConnReq
			conn  *core.Connection
			sinks []*traffic.Sink
		}
		var srcs []*traffic.Source
		var flows []*phaseSinks
		var expected uint64
		var budget uint64 = phaseBudget(ph, wheel)
		for i, cn := range conns {
			if cn == nil {
				continue
			}
			req := &ph.Conns[i]
			srcs = append(srcs, traffic.NewSource(p.Sim, fmt.Sprintf("p%d.src%d", pi, i), p.NI(cn.Spec.Src), cn.SrcChannel,
				traffic.SourceConfig{Pattern: traffic.CBR, Rate: 1.0, Limit: req.Words, Seed: c.Spec.Seed ^ uint64(pi)<<20 ^ uint64(i)}))
			fl := &phaseSinks{req: req, conn: cn}
			if cn.Tree != nil {
				for j, d := range cn.Spec.Dsts {
					fl.sinks = append(fl.sinks, traffic.NewSink(p.Sim, fmt.Sprintf("p%d.sink%d.%d", pi, i, j), p.NI(d), cn.DstChannels[d]))
					expected += req.Words
				}
			} else {
				fl.sinks = append(fl.sinks, traffic.NewSink(p.Sim, fmt.Sprintf("p%d.sink%d", pi, i), p.NI(cn.Spec.Dst), cn.DstChannel))
				expected += req.Words
			}
			pr.Words += req.Words * uint64(len(fl.sinks))
			flows = append(flows, fl)
		}

		// Chaos: kill a routed link partway into the phase and let the
		// health monitor repair around it.
		if opt.ChaosEvery > 0 && (pi+1)%opt.ChaosEvery == 0 {
			var victim topology.LinkID = -1
			for _, fl := range flows {
				if fl.conn.Fwd != nil && len(fl.conn.Fwd.Paths[0].Path) >= 3 {
					victim = fl.conn.Fwd.Paths[0].Path[1]
					break
				}
				if fl.conn.Tree != nil {
					// Prefer a router-owned hop: an NI injection link has
					// no alternative route, so killing it is unrepairable.
					for _, e := range fl.conn.Tree.Edges {
						if p.Routers[p.Mesh.Graph.Link(e.Link).From] != nil {
							victim = e.Link
							break
						}
					}
					if victim >= 0 {
						break
					}
				}
			}
			if victim >= 0 {
				// Land the fault inside the transfer window, not the
				// settle tail: a quarter of the closed-form worst-case
				// drain time in, so the slowest flow is still
				// mid-stream when the link dies.
				disrupt := (budget - 8192) / 16
				if disrupt < 64 {
					disrupt = 64
				}
				at := p.Cycle() + disrupt
				if _, err := fault.Attach(p, c.Spec.Seed^uint64(pi), fault.Fault{Kind: fault.LinkDown, Link: victim, From: at}); err != nil {
					return nil, fmt.Errorf("workload: phase %s: fault attach: %w", ph.Name, err)
				}
				if hmon == nil {
					hmon = core.NewHealthMonitor(p, 256)
				}
				pr.Faulted = true
			}
		}

		// Drive the phase in fixed chunks until it drains or the budget
		// runs out; all progress decisions land on chunk boundaries, so
		// they are identical across worker counts and execution modes.
		delivered := func() uint64 {
			var n uint64
			for _, fl := range flows {
				for _, k := range fl.sinks {
					n += k.Received()
				}
			}
			return n
		}
		done := func() bool {
			for _, s := range srcs {
				if !s.Done() {
					return false
				}
			}
			return delivered() == expected
		}
		deadline := p.Cycle() + budget
		for p.Cycle() < deadline && !done() {
			step := uint64(256)
			if rest := deadline - p.Cycle(); rest < step {
				step = rest
			}
			p.Run(step)
			if hmon != nil && len(hmon.Stalled()) > 0 {
				repairs, err := p.RepairStalled(hmon, 1_000_000)
				if err != nil {
					// Deterministically unrepairable: run degraded.
					hmon = nil
				}
				for _, r := range repairs {
					if r.Conn == nil {
						continue
					}
					for _, fl := range flows {
						if fl.conn.ID == r.OldID {
							fl.conn = r.Conn
							pr.Repaired++
						}
					}
				}
				ck.Resync()
			}
		}
		pr.Drained = done()
		pr.DrainCycles = p.Cycle() - pr.StartCycle
		disturbed := pr.Faulted || pr.Repaired > 0
		if !pr.Drained && !disturbed {
			fail("did not drain: %d/%d words within %d-cycle budget", delivered(), expected, budget)
		}

		// Settled tail: fixed, and long enough for fast-forward to skip
		// whole hyper-periods once the bounded sources are done.
		p.Run(2048)
		ck.CheckNow()

		// Differentials 2 and 3: the TDM law makes per-word latency a
		// constant — single-path unicast and every multicast destination
		// must hit the model's figure exactly — and complete delivery
		// within the closed-form budget is the attained-bandwidth check.
		for _, fl := range flows {
			cn := fl.conn
			for _, k := range fl.sinks {
				pr.Delivered += k.Received()
			}
			if disturbed || cn.State != core.Open {
				continue
			}
			if cn.Tree == nil {
				st := fl.sinks[0].Stats()
				if st.Count == 0 {
					fail("conn %s: no deliveries", fl.req.Name)
					continue
				}
				lat := model.UnicastLatency(cn)
				if len(cn.Fwd.Paths) == 1 {
					if st.MinLat != lat.NetMin || st.MaxLat != lat.NetMax {
						fail("conn %s: net latency [%d,%d], model law says exactly %d",
							fl.req.Name, st.MinLat, st.MaxLat, lat.NetMin)
					}
				} else if st.MinLat < lat.NetMin || st.MaxLat > lat.NetMax {
					fail("conn %s: net latency [%d,%d] outside model [%d,%d]",
						fl.req.Name, st.MinLat, st.MaxLat, lat.NetMin, lat.NetMax)
				}
			} else {
				for j, d := range cn.Spec.Dsts {
					st := fl.sinks[j].Stats()
					if st.Count == 0 {
						fail("conn %s dst %d: no deliveries", fl.req.Name, d)
						continue
					}
					net := model.MulticastNet(cn, d)
					if st.MinLat != net || st.MaxLat != net {
						fail("conn %s dst %d: net latency [%d,%d], model law says exactly %d",
							fl.req.Name, d, st.MinLat, st.MaxLat, net)
					}
				}
			}
		}

		// Teardown: detach the generators before their channels are
		// freed, close the phase and verify the allocator returned to
		// its pre-phase state bit for bit.
		for _, s := range srcs {
			s.Detach()
		}
		for _, fl := range flows {
			for _, k := range fl.sinks {
				k.Detach()
			}
		}
		for _, fl := range flows {
			if fl.conn.State == core.Closed {
				// A failed repair tears the stalled connection down
				// before re-admission; when re-admission finds no spare
				// capacity the tear-down stands and there is nothing
				// left to close.
				continue
			}
			if err := p.Close(fl.conn); err != nil {
				return nil, fmt.Errorf("workload: phase %s: close %s: %w", ph.Name, fl.req.Name, err)
			}
		}
		if _, err := p.CompleteConfig(5_000_000); err != nil {
			return nil, fmt.Errorf("workload: phase %s: settle teardown: %w", ph.Name, err)
		}
		ck.Resync()
		if !disturbed && p.Alloc.Fingerprint() != preFP {
			fail("teardown did not restore allocator occupancy (pre %016x, post %016x)", preFP, p.Alloc.Fingerprint())
		}

		pr.Cycles = p.Cycle() - pr.StartCycle
		pr.Forwarded = totalForwarded() - startForwarded
		res.Opened += pr.Opened
		res.Delivered += pr.Delivered
		res.Failures = append(res.Failures, pr.Failures...)
		res.Phases = append(res.Phases, pr)
	}

	res.Violations = ck.Violations()
	for _, v := range ck.Recorded() {
		res.Failures = append(res.Failures, fmt.Sprintf("violation @%d %s: %s", v.Cycle, v.Check, v.Detail))
	}
	fp = fp.Mix(res.Delivered)
	fp = fp.Mix(res.Violations)
	res.Fingerprint = fp.Sum()
	res.Skipped = p.Sim.SkippedCycles()
	return res, nil
}
