package workload

import (
	"fmt"

	"daelite/internal/sim"
	"daelite/internal/spec"
)

// compileSwitch draws Tiny Tera-style VOQ matrices over the mesh's NIs.
// Every draw respects the per-port slot and channel budgets — the
// nominal matrix is always doubly substochastic (admissible) — so the
// hotspot phases load one egress port to its admissible limit without
// ever requesting more than the port can carry. Any nofit the allocator
// then reports is contention on the fabric's interior links, which is
// exactly the acceptance behaviour E24 measures.
func compileSwitch(s *Spec) ([]Phase, error) {
	w := s.Switch
	if n := s.portCount(); n < 2 {
		return nil, fmt.Errorf("workload: switch pack needs at least 2 ports, mesh has %d", n)
	} else if n > 4096 {
		return nil, fmt.Errorf("workload: %d ports exceed the 4096-port cap", n)
	}
	ports := s.ports()
	wheel, _, channels := s.Resolved()
	nph := w.Phases
	if nph == 0 {
		nph = 3
		if w.Pattern != "" {
			nph = 1
		}
	}
	conns := w.Conns
	if conns == 0 {
		conns = len(ports)
	}
	slots := w.Slots
	if slots == 0 {
		slots = 1
	}
	cells := w.Cells
	if cells == 0 {
		cells = 8
	}
	cellWords := w.CellWords
	if cellWords == 0 {
		cellWords = 16
	}
	if slots > wheel {
		return nil, fmt.Errorf("workload: switch slots %d exceed the %d-slot wheel", slots, wheel)
	}
	frac := w.HotspotFrac
	if frac == 0 {
		frac = 0.5
	}
	hot := len(ports) - 1
	if w.Hotspot != nil {
		hot = -1
		for i, c := range ports {
			if c == *w.Hotspot {
				hot = i
				break
			}
		}
		if hot < 0 {
			return nil, fmt.Errorf("workload: hotspot (%d,%d,%d) is not a port", w.Hotspot.X, w.Hotspot.Y, w.Hotspot.NI)
		}
	}

	rng := sim.NewRNG(s.Seed ^ 0x746e79746572615f) // "tinytera"-flavoured stream
	var phases []Phase
	for p := 0; p < nph; p++ {
		pattern := w.Pattern
		if pattern == "" {
			pattern = []string{"uniform", "diagonal", "hotspot"}[p%3]
		}
		ph := Phase{Name: fmt.Sprintf("%s#%d", pattern, p), Kind: pattern, Layer: -1}

		// Per-port budget tracking: a draw is only admitted if both its
		// endpoints keep their slot and channel budgets (including the
		// unicast reverse credit slot at each side).
		tx := make([]int, len(ports))
		rx := make([]int, len(ports))
		txCh := make([]int, len(ports))
		rxCh := make([]int, len(ports))
		admit := func(src, dst int) bool {
			if src == dst {
				return false
			}
			if tx[src]+slots > wheel || rx[src]+1 > wheel {
				return false
			}
			if rx[dst]+slots > wheel || tx[dst]+1 > wheel {
				return false
			}
			if txCh[src]+1 > channels || rxCh[dst]+1 > channels {
				return false
			}
			return true
		}
		add := func(src, dst int) {
			tx[src] += slots
			rx[src]++
			rx[dst] += slots
			tx[dst]++
			txCh[src]++
			rxCh[dst]++
			d := ports[dst]
			ph.Conns = append(ph.Conns, ConnReq{
				Name: fmt.Sprintf("%s.voq%d", ph.Name, len(ph.Conns)),
				Src:  ports[src], Dst: &d, Slots: slots, Words: uint64(cells * cellWords),
			})
		}

		switch pattern {
		case "diagonal":
			// Port i talks to port i+shift: a permutation matrix, the
			// easiest admissible load and the fairest one.
			shift := 1 + p%(len(ports)-1)
			for i := range ports {
				if len(ph.Conns) >= conns {
					break
				}
				if j := (i + shift) % len(ports); admit(i, j) {
					add(i, j)
				}
			}
		default:
			// uniform and hotspot draw randomly under the budgets; a
			// hotspot draw aims at the hot port first and falls back to
			// uniform once the hot port's admissible capacity is filled.
			for tries := 0; len(ph.Conns) < conns && tries < 64*conns; tries++ {
				src := rng.Intn(len(ports))
				dst := rng.Intn(len(ports))
				if pattern == "hotspot" && rng.Float64() < frac {
					if admit(src, hot) {
						add(src, hot)
						continue
					}
				}
				if admit(src, dst) {
					add(src, dst)
				}
			}
		}
		if len(ph.Conns) == 0 {
			return nil, fmt.Errorf("workload: phase %s drew no admissible connections", ph.Name)
		}
		phases = append(phases, ph)
	}
	return phases, nil
}

// shape returns the effective port-grid dimensions after defaulting.
func (s *Spec) shape() (width, height, nis int) {
	width, height = s.Mesh.Width, s.Mesh.Height
	if s.Mesh.Kind == "ring" || s.Mesh.Kind == "spidergon" {
		height = 1
	}
	nis = s.Mesh.NIsPerRouter
	if nis < 1 {
		nis = 1
	}
	return width, height, nis
}

// portCount sizes the port grid without materializing it, guarding the
// enumeration against absurd meshes (overflow-safe for validated specs).
func (s *Spec) portCount() int {
	width, height, nis := s.shape()
	if width > 4096 || height > 4096 || nis > 4096 {
		return 4097
	}
	if n := width * height; n > 4096 || n*nis > 4096 {
		return 4097
	}
	return width * height * nis
}

// ports enumerates every NI of the mesh in row-major order.
func (s *Spec) ports() []spec.Coord {
	width, height, nis := s.shape()
	var out []spec.Coord
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			for k := 0; k < nis; k++ {
				out = append(out, spec.Coord{X: x, Y: y, NI: k})
			}
		}
	}
	return out
}
