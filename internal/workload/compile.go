package workload

import (
	"fmt"

	"daelite/internal/spec"
)

// ConnReq is one compiled connection request of a phase, addressed in
// mesh coordinates so the same compiled pack can drive an in-process
// platform (the runner) or the admission control plane (a load plan).
type ConnReq struct {
	Name string
	Src  spec.Coord
	// Dst is set for unicast, Dsts for multicast — exactly one of them.
	Dst  *spec.Coord
	Dsts []spec.Coord
	// Slots is the forward TDM reservation; unicast additionally carries
	// the implicit 1-slot reverse credit channel.
	Slots int
	// Words is the bounded payload each source offers during the phase
	// (per destination, for multicast trees).
	Words uint64
}

// Phase is one compiled traffic phase: its connections are opened
// together, driven until every bounded source drains, then torn down
// before the next phase begins.
type Phase struct {
	Name string
	// Kind is "broadcast" or "activation" for DNN packs, the matrix
	// pattern for switch packs.
	Kind string
	// Layer is the DNN layer index (-1 for switch phases).
	Layer int
	Conns []ConnReq
	// MACs is the compute work the phase triggers (DNN broadcast: the
	// layer computes once its weights arrive); priced by the energy
	// model, not simulated.
	MACs uint64
	// MMemWords counts words read from main memory to feed the phase
	// (DNN broadcast payloads).
	MMemWords uint64
}

// OfferedWords sums the words every sink of the phase should receive.
func (ph *Phase) OfferedWords() uint64 {
	var total uint64
	for _, c := range ph.Conns {
		n := uint64(1)
		if len(c.Dsts) > 0 {
			n = uint64(len(c.Dsts))
		}
		total += c.Words * n
	}
	return total
}

// Compiled is a fully expanded pack: the platform description plus the
// phase schedule. Compilation is a pure function of the Spec.
type Compiled struct {
	Spec *Spec
	// Platform is the internal/spec platform description (no
	// start-of-day connections; phases open their own).
	Platform spec.Spec
	Phases   []Phase
}

// Name returns the pack's display name.
func (c *Compiled) Name() string {
	if c.Spec.Name != "" {
		return c.Spec.Name
	}
	return c.Spec.Kind
}

// Compile expands a validated pack spec into its phase schedule and
// proves per-port admissibility: for every phase, the slot demand summed
// per NI ingress and egress (including the implicit unicast reverse
// channel) must fit the wheel, and the per-NI connection count must fit
// the channel file. A spec that over-reserves is rejected here — the
// compiler never emits a phase whose nominal demand exceeds hardware
// capacity, so any admission refusal at run time is path contention
// inside the fabric, never an inadmissible request.
func Compile(s *Spec) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{Spec: s, Platform: s.platformSpec()}
	var err error
	switch s.Kind {
	case "dnn":
		c.Phases, err = compileDNN(s)
	case "switch":
		c.Phases, err = compileSwitch(s)
	}
	if err != nil {
		return nil, err
	}
	wheel, _, channels := s.Resolved()
	for i := range c.Phases {
		if err := checkPhaseDemand(&c.Phases[i], wheel, channels); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// portDemand tracks one NI's nominal slot and channel budgets during
// demand accounting.
type portDemand struct {
	tx, rx     int // slot demand per direction
	txCh, rxCh int // channel file demand per side
}

// phaseDemand sums a phase's nominal per-NI demand. Unicast reserves
// Slots forward plus one reverse credit slot; a multicast tree reserves
// Slots at the source and at every destination and runs creditless.
func phaseDemand(ph *Phase) map[spec.Coord]*portDemand {
	demand := map[spec.Coord]*portDemand{}
	at := func(c spec.Coord) *portDemand {
		d := demand[c]
		if d == nil {
			d = &portDemand{}
			demand[c] = d
		}
		return d
	}
	for _, cn := range ph.Conns {
		src := at(cn.Src)
		src.tx += cn.Slots
		src.txCh++
		if cn.Dst != nil {
			src.rx++ // reverse credit slot
			dst := at(*cn.Dst)
			dst.rx += cn.Slots
			dst.tx++
			dst.rxCh++
		}
		for _, d := range cn.Dsts {
			dst := at(d)
			dst.rx += cn.Slots
			dst.rxCh++
		}
	}
	return demand
}

func checkPhaseDemand(ph *Phase, wheel, channels int) error {
	for coord, d := range phaseDemand(ph) {
		if d.tx > wheel || d.rx > wheel {
			return fmt.Errorf("workload: phase %s over-reserves NI (%d,%d,%d): tx=%d rx=%d slots against a %d-slot wheel",
				ph.Name, coord.X, coord.Y, coord.NI, d.tx, d.rx, wheel)
		}
		if d.txCh > channels || d.rxCh > channels {
			return fmt.Errorf("workload: phase %s needs %d/%d channels at NI (%d,%d,%d), only %d available",
				ph.Name, d.txCh, d.rxCh, coord.X, coord.Y, coord.NI, channels)
		}
	}
	return nil
}

// words converts a byte volume to NoC words, rounding up.
func words(bytes, bytesPerWord int) uint64 {
	if bytesPerWord <= 0 {
		bytesPerWord = 4
	}
	return uint64((bytes + bytesPerWord - 1) / bytesPerWord)
}

// PlanPhase is one phase of an admission-plane load plan derived from a
// compiled pack: the opens to submit together, torn down again at the
// end of the phase. Coordinates address routers; the control plane
// resolves them to NIs itself (packs driven through the plan should use
// one NI per router).
type PlanPhase struct {
	Name     string
	Opens    []ConnReq
	Teardown bool
}

// Plan projects the compiled phase schedule onto the admission plane:
// every phase becomes a batch of opens followed by a teardown, which
// exercises set-up, DRR arbitration, quota and backpressure against
// exactly the application's connection pattern.
func (c *Compiled) Plan() []PlanPhase {
	plan := make([]PlanPhase, 0, len(c.Phases))
	for _, ph := range c.Phases {
		plan = append(plan, PlanPhase{Name: ph.Name, Opens: ph.Conns, Teardown: true})
	}
	return plan
}
