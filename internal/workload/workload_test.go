package workload

import (
	"bytes"
	"strings"
	"testing"

	"daelite/internal/spec"
)

// testDNNSpec is a small feed-forward net on a 4x4 mesh: two memory
// tiles, three layers, multicast weight broadcasts and round-robin
// activation unicasts.
func testDNNSpec() *Spec {
	return &Spec{
		Kind: "dnn", Name: "dnn-test", Seed: 7,
		Mesh: spec.MeshSpec{Width: 4, Height: 4},
		DNN: &DNNSpec{
			MemoryTiles: []spec.Coord{{X: 0, Y: 0}, {X: 3, Y: 0}},
			Layers: []LayerSpec{
				{Name: "conv1", Neurons: 64, Tiles: []spec.Coord{{X: 1, Y: 1}, {X: 2, Y: 1}}, WeightBytes: 256, ActivationBytes: 128},
				{Name: "conv2", Neurons: 32, Tiles: []spec.Coord{{X: 1, Y: 2}, {X: 2, Y: 2}}, WeightBytes: 384, ActivationBytes: 96},
				{Name: "fc", Neurons: 10, Tiles: []spec.Coord{{X: 3, Y: 3}}, WeightBytes: 160},
			},
		},
	}
}

// testSwitchSpec is a Tiny Tera-style pack on a 3x3 mesh cycling
// through uniform, diagonal and hotspot matrices.
func testSwitchSpec() *Spec {
	return &Spec{
		Kind: "switch", Name: "tinytera-test", Seed: 11,
		Mesh:   spec.MeshSpec{Width: 3, Height: 3},
		Switch: &SwitchSpec{Conns: 6, Cells: 4, CellWords: 8},
	}
}

func TestCompileDNN(t *testing.T) {
	c, err := Compile(testDNNSpec())
	if err != nil {
		t.Fatal(err)
	}
	// 3 layers: 3 broadcast phases + 2 activation phases.
	if len(c.Phases) != 5 {
		t.Fatalf("got %d phases, want 5", len(c.Phases))
	}
	if c.Phases[0].Kind != "broadcast" || c.Phases[1].Kind != "activation" {
		t.Fatalf("unexpected phase kinds %q, %q", c.Phases[0].Kind, c.Phases[1].Kind)
	}
	// conv1 weights: 256 bytes / 4 = 64 words, multicast to 2 tiles.
	b := c.Phases[0]
	if len(b.Conns) != 1 || len(b.Conns[0].Dsts) != 2 || b.Conns[0].Words != 64 {
		t.Fatalf("conv1 broadcast: %+v", b.Conns)
	}
	if b.MMemWords != 64 {
		t.Fatalf("conv1 MMemWords = %d, want 64", b.MMemWords)
	}
	if b.MACs != 64*64 {
		t.Fatalf("conv1 MACs = %d, want %d", b.MACs, 64*64)
	}
	// conv1 activations: 128/4 = 32 words over 2 tiles -> 16 words per conn.
	a := c.Phases[1]
	if len(a.Conns) != 2 || a.Conns[0].Words != 16 {
		t.Fatalf("conv1 activations: %+v", a.Conns)
	}
	// fc has one tile: broadcast compiles to unicast.
	last := c.Phases[len(c.Phases)-1]
	if last.Kind != "broadcast" || last.Conns[0].Dst == nil {
		t.Fatalf("fc broadcast should be unicast: %+v", last.Conns)
	}
}

func TestCompileSwitch(t *testing.T) {
	c, err := Compile(testSwitchSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(c.Phases))
	}
	kinds := []string{c.Phases[0].Kind, c.Phases[1].Kind, c.Phases[2].Kind}
	if kinds[0] != "uniform" || kinds[1] != "diagonal" || kinds[2] != "hotspot" {
		t.Fatalf("unexpected matrix cycle %v", kinds)
	}
	for _, ph := range c.Phases {
		if len(ph.Conns) == 0 {
			t.Fatalf("phase %s drew no connections", ph.Name)
		}
		for _, cn := range ph.Conns {
			if cn.Words != 4*8 {
				t.Fatalf("phase %s conn words = %d, want 32", ph.Name, cn.Words)
			}
		}
	}
	// Compilation is a pure function of the spec.
	c2, err := Compile(testSwitchSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Phases {
		if len(c.Phases[i].Conns) != len(c2.Phases[i].Conns) {
			t.Fatalf("phase %d: %d vs %d conns across identical compiles", i, len(c.Phases[i].Conns), len(c2.Phases[i].Conns))
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []*Spec{testDNNSpec(), testSwitchSpec()} {
		blob, err := s.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if back.Kind != s.Kind || back.Seed != s.Seed {
			t.Fatalf("%s: round trip lost fields", s.Name)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"unknown kind", func(s *Spec) { s.Kind = "fft" }, "unknown pack kind"},
		{"missing section", func(s *Spec) { s.DNN = nil }, "requires a dnn section"},
		{"both sections", func(s *Spec) { s.Switch = &SwitchSpec{} }, "must not carry"},
		{"no memory tiles", func(s *Spec) { s.DNN.MemoryTiles = nil }, "memory tile"},
		{"no layers", func(s *Spec) { s.DNN.Layers = nil }, "at least one layer"},
		{"zero neurons", func(s *Spec) { s.DNN.Layers[0].Neurons = 0 }, "neurons must be positive"},
		{"zero weights", func(s *Spec) { s.DNN.Layers[0].WeightBytes = 0 }, "zero-size transfers"},
		{"zero activations", func(s *Spec) { s.DNN.Layers[0].ActivationBytes = 0 }, "zero-size transfers"},
		{"tile out of range", func(s *Spec) { s.DNN.Layers[0].Tiles[0].X = 9 }, "outside"},
		{"negative NI", func(s *Spec) { s.DNN.Layers[0].Tiles[0].NI = -1 }, "out of range"},
		{"duplicate tile", func(s *Spec) { s.DNN.Layers[0].Tiles[1] = s.DNN.Layers[0].Tiles[0] }, "duplicate tile"},
	}
	for _, tc := range cases {
		s := testDNNSpec()
		tc.mutate(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}

	sw := testSwitchSpec()
	sw.Switch.Pattern = "avalanche"
	if err := sw.Validate(); err == nil || !strings.Contains(err.Error(), "unknown switch pattern") {
		t.Errorf("bad pattern: %v", err)
	}
	sw = testSwitchSpec()
	sw.Switch.HotspotFrac = 1.5
	if err := sw.Validate(); err == nil || !strings.Contains(err.Error(), "hotspotFrac") {
		t.Errorf("bad hotspotFrac: %v", err)
	}
}

func TestCompileRejectsOverReservation(t *testing.T) {
	// 9 source tiles all funnel into one next-layer tile: the activation
	// phase would need 9 ingress slots against an 8-slot wheel. The
	// compiler must refuse rather than emit an inadmissible phase.
	s := testDNNSpec()
	var tiles []spec.Coord
	for i := 0; i < 9; i++ {
		tiles = append(tiles, spec.Coord{X: 1 + i%3, Y: 1 + i/3})
	}
	s.DNN.Layers = []LayerSpec{
		{Name: "wide", Neurons: 16, Tiles: tiles, WeightBytes: 64, ActivationBytes: 64},
		{Name: "narrow", Neurons: 4, Tiles: []spec.Coord{{X: 0, Y: 3}}, WeightBytes: 16},
	}
	if _, err := Compile(s); err == nil {
		t.Fatal("compiler accepted a phase that over-reserves an NI")
	}
	// The memory-tile collision is also a compile error.
	s = testDNNSpec()
	s.DNN.Layers[0].Tiles[0] = s.DNN.MemoryTiles[0]
	if _, err := Compile(s); err == nil || !strings.Contains(err.Error(), "memory tile") {
		t.Fatalf("memory-tile collision: %v", err)
	}
}

func TestRunDNNPack(t *testing.T) {
	c, err := Compile(testDNNSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("dnn pack failed:\n%s\n%v", res.Summary(), res.Failures)
	}
	var offered uint64
	for i := range c.Phases {
		offered += c.Phases[i].OfferedWords()
	}
	if res.Delivered != offered {
		t.Fatalf("delivered %d words, offered %d", res.Delivered, offered)
	}
	for _, pr := range res.Phases {
		if !pr.Drained {
			t.Errorf("phase %s did not drain", pr.Name)
		}
		if pr.NoFit != 0 {
			t.Errorf("phase %s: %d nofit on an idle mesh", pr.Name, pr.NoFit)
		}
		if pr.Forwarded == 0 {
			t.Errorf("phase %s forwarded nothing", pr.Name)
		}
	}
}

func TestRunSwitchPack(t *testing.T) {
	c, err := Compile(testSwitchSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("switch pack failed:\n%s\n%v", res.Summary(), res.Failures)
	}
	if res.Opened == 0 || res.Delivered == 0 {
		t.Fatalf("switch pack opened %d, delivered %d", res.Opened, res.Delivered)
	}
}

func TestSweepBitExact(t *testing.T) {
	c, err := Compile(testSwitchSpec())
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Sweep(c, []int{1, 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Passed() {
		t.Fatalf("sweep failed: %v", sr.Mismatches)
	}
	for _, r := range sr.Results {
		if r.Skipped == 0 {
			t.Fatalf("fast-forwarded run never skipped")
		}
	}
}

func TestWorkloadMutationSmoke(t *testing.T) {
	c, err := Compile(testDNNSpec())
	if err != nil {
		t.Fatal(err)
	}
	caught, err := MutationSmoke(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if caught == 0 {
		t.Fatal("planted slot-table flip during a broadcast phase went undetected")
	}
}

func TestChaosRunStaysDeterministic(t *testing.T) {
	c, err := Compile(testDNNSpec())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(c, RunOptions{Workers: 1, ChaosEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, RunOptions{Workers: 2, ChaosEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint || a.Delivered != b.Delivered {
		t.Fatalf("chaos runs diverged: %016x/%d vs %016x/%d", a.Fingerprint, a.Delivered, b.Fingerprint, b.Delivered)
	}
	if a.Violations != 0 {
		t.Fatalf("chaos run reported %d violations", a.Violations)
	}
	faulted := false
	for _, pr := range a.Phases {
		faulted = faulted || pr.Faulted
	}
	if !faulted {
		t.Fatal("chaos run planted no faults")
	}
}

// The hotspot switch pack loads the hot egress at 7/8 of a link, so a
// chaos fault on it is deterministically unrepairable: re-admission finds
// no spare capacity, the failed repair's tear-down stands, and the run
// must finish degraded instead of erroring at phase teardown.
func TestChaosUnrepairableRunsDegraded(t *testing.T) {
	c, err := Compile(ExampleTinyTera("hotspot"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, RunOptions{Workers: 1, ChaosEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("degraded chaos run failed: %v", res.Failures)
	}
	faulted := false
	for _, pr := range res.Phases {
		faulted = faulted || pr.Faulted
	}
	if !faulted {
		t.Fatal("chaos run planted no faults")
	}
}

func TestPlanProjection(t *testing.T) {
	c, err := Compile(testDNNSpec())
	if err != nil {
		t.Fatal(err)
	}
	plan := c.Plan()
	if len(plan) != len(c.Phases) {
		t.Fatalf("plan has %d phases, pack has %d", len(plan), len(c.Phases))
	}
	for i, ph := range plan {
		if !ph.Teardown || len(ph.Opens) != len(c.Phases[i].Conns) {
			t.Fatalf("plan phase %s malformed", ph.Name)
		}
	}
}

// TestResultReportRendersEveryPhase: the shared -workload report table
// carries one row per phase plus the summary verdict line.
func TestResultReportRendersEveryPhase(t *testing.T) {
	c, err := Compile(testDNNSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Report()
	for _, ph := range c.Phases {
		if !strings.Contains(out, ph.Name) {
			t.Fatalf("report omits phase %s:\n%s", ph.Name, out)
		}
	}
	if !strings.Contains(out, "PASS") {
		t.Fatalf("report omits the summary verdict:\n%s", out)
	}
}
