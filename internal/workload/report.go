package workload

import (
	"fmt"

	"daelite/internal/report"
)

// Report renders the per-phase outcome of a pack run as a terminal
// table, one row per phase plus the run's summary line — the shared
// output format of the -workload modes of daelite-sim, daelite-chaos
// and daelite-conform.
func (r *Result) Report() string {
	t := report.NewTable(fmt.Sprintf("workload %s — %d phases", r.Pack, len(r.Phases)),
		"Phase", "Kind", "Conns", "Words", "Delivered", "Setup", "Transfer", "Cycles", "Forwarded", "Faults")
	for i := range r.Phases {
		ph := &r.Phases[i]
		conns := fmt.Sprintf("%d/%d", ph.Opened, ph.Requested)
		var transfer uint64
		if ph.DrainCycles > ph.SetupCycles {
			transfer = ph.DrainCycles - ph.SetupCycles
		}
		faults := ""
		if ph.Faulted {
			faults = fmt.Sprintf("1 (%d repaired)", ph.Repaired)
		}
		t.AddRow(ph.Name, ph.Kind, conns, ph.Words, ph.Delivered,
			ph.SetupCycles, transfer, ph.Cycles, ph.Forwarded, faults)
	}
	return t.Render() + "\n" + r.Summary() + "\n"
}
