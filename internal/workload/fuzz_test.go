package workload

// FuzzWorkloadSpec feeds arbitrary bytes through the pack parser and
// compiler. The contract under fuzzing: malformed inputs — broken JSON,
// unknown fields, out-of-range tile coordinates, zero-size transfers,
// inadmissible layer graphs — must come back as errors, never as a
// panic, a hang, or a compiled pack whose nominal demand over-reserves
// an NI's slot wheel or channel file.

import (
	"bytes"
	"testing"
)

func FuzzWorkloadSpec(f *testing.F) {
	for _, s := range []*Spec{testDNNSpec(), testSwitchSpec()} {
		blob, err := s.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte(`{"kind":"dnn"}`))
	f.Add([]byte(`{"kind":"dnn","mesh":{"width":2,"height":2},"dnn":{"memoryTiles":[{"x":0,"y":0}],"layers":[{"neurons":1,"tiles":[{"x":1,"y":1}],"weightBytes":0}]}}`))
	f.Add([]byte(`{"kind":"dnn","mesh":{"width":2,"height":2},"dnn":{"memoryTiles":[{"x":9,"y":9}],"layers":[{"neurons":1,"tiles":[{"x":1,"y":1}],"weightBytes":4}]}}`))
	f.Add([]byte(`{"kind":"switch","mesh":{"width":3,"height":3},"switch":{"pattern":"hotspot","slots":99}}`))
	f.Add([]byte(`{"kind":"switch","mesh":{"width":4000,"height":4000},"switch":{}}`))
	f.Add([]byte(`{"kind":"dnn","mesh":{"width":-1,"height":2},"dnn":{"memoryTiles":[],"layers":[]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(bytes.NewReader(data))
		if err != nil {
			return // rejected: the only acceptable failure mode
		}
		c, err := Compile(s)
		if err != nil {
			return
		}
		// An accepted pack must hold the admissibility contract.
		wheel, _, channels := s.Resolved()
		for i := range c.Phases {
			ph := &c.Phases[i]
			if len(ph.Conns) == 0 {
				t.Fatalf("compiled phase %s has no connections", ph.Name)
			}
			if err := checkPhaseDemand(ph, wheel, channels); err != nil {
				t.Fatalf("compiled pack over-reserves: %v", err)
			}
			for _, cn := range ph.Conns {
				if cn.Slots <= 0 {
					t.Fatalf("phase %s conn %s compiled with %d slots", ph.Name, cn.Name, cn.Slots)
				}
				if cn.Words == 0 {
					t.Fatalf("phase %s conn %s compiled with a zero-size transfer", ph.Name, cn.Name)
				}
				if (cn.Dst == nil) == (len(cn.Dsts) == 0) {
					t.Fatalf("phase %s conn %s has neither unicast nor multicast endpoints", ph.Name, cn.Name)
				}
			}
		}
	})
}
