package workload

import "daelite/internal/spec"

// ExampleDNN returns the canonical DNN inference pack used by the E23
// experiment, the determinism soaks and examples/workloads/dnn.json: a
// three-layer network mapped onto a 4x4 mesh with two memory tiles on
// the top row feeding the weight broadcasts. The shapes are sized so the
// broadcast and activation phases exercise multicast trees, multi-tile
// fan-in and single-tile funnels while a full run stays under a second.
func ExampleDNN() *Spec {
	return &Spec{
		Kind: "dnn",
		Name: "dnn-3layer",
		Seed: 2024,
		Mesh: spec.MeshSpec{Width: 4, Height: 4},
		DNN: &DNNSpec{
			BytesPerWord: 4,
			MemoryTiles:  []spec.Coord{{X: 0, Y: 0}, {X: 3, Y: 0}},
			Layers: []LayerSpec{
				{
					Name: "conv1", Neurons: 64,
					Tiles:       []spec.Coord{{X: 0, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 1}},
					WeightBytes: 512, ActivationBytes: 256,
				},
				{
					Name: "conv2", Neurons: 32,
					Tiles:       []spec.Coord{{X: 1, Y: 2}, {X: 2, Y: 2}},
					WeightBytes: 768, ActivationBytes: 128,
				},
				{
					Name: "fc", Neurons: 10,
					Tiles:       []spec.Coord{{X: 3, Y: 3}},
					WeightBytes: 320,
				},
			},
		},
	}
}

// ExampleTinyTera returns the canonical switch-fabric pack for the given
// traffic pattern ("uniform", "diagonal" or "hotspot"): a 4x4 mesh
// modelling a 16-port fabric, VOQ connections carrying fixed-size cells,
// with the hotspot variant funnelling half the admissible draws at one
// egress. Used by the E24 experiment, the determinism soaks and
// examples/workloads/tinytera.json.
func ExampleTinyTera(pattern string) *Spec {
	return &Spec{
		Kind: "switch",
		Name: "tinytera-" + pattern,
		Seed: 4091,
		Mesh: spec.MeshSpec{Width: 4, Height: 4},
		Switch: &SwitchSpec{
			Pattern:     pattern,
			Conns:       12,
			Slots:       1,
			Cells:       8,
			CellWords:   16,
			Phases:      3,
			HotspotFrac: 0.5,
		},
	}
}
