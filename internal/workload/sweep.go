package workload

import "fmt"

// SweepResult is the outcome of running one pack under several kernel
// worker counts (and optionally fast-forward) and comparing everything
// observable.
type SweepResult struct {
	Pack string
	// Reference is the cycle-accurate single-worker run every other
	// execution is compared against.
	Reference *Result
	// Results holds one entry per swept worker count, in order.
	Results []*Result
	// Mismatches lists cross-execution divergences (empty on pass).
	Mismatches []string
}

// Passed reports whether every execution passed its own differential
// checks and matched the reference bit for bit.
func (s *SweepResult) Passed() bool {
	if len(s.Mismatches) > 0 || !s.Reference.Passed() {
		return false
	}
	for _, r := range s.Results {
		if !r.Passed() {
			return false
		}
	}
	return true
}

// Sweep runs the pack cycle-accurately with one worker as the reference,
// then once per requested worker count (fast-forwarded when ff is set),
// and requires fingerprints, admission outcomes, delivery counts and
// checker verdicts to be bit-identical across all of them. With ff set,
// every non-reference run must also have genuinely skipped cycles —
// identical results without skipping would prove nothing about the
// fast-forward path.
func Sweep(c *Compiled, workers []int, ff bool) (*SweepResult, error) {
	ref, err := Run(c, RunOptions{Workers: 1})
	if err != nil {
		return nil, err
	}
	sr := &SweepResult{Pack: c.Name(), Reference: ref}
	if ref.Skipped != 0 {
		sr.Mismatches = append(sr.Mismatches, fmt.Sprintf("cycle-accurate reference skipped %d cycles", ref.Skipped))
	}
	for _, w := range workers {
		r, err := Run(c, RunOptions{Workers: w, FastForward: ff})
		if err != nil {
			return nil, err
		}
		sr.Results = append(sr.Results, r)
		tag := fmt.Sprintf("workers=%d ff=%v", w, ff)
		if r.Fingerprint != ref.Fingerprint {
			sr.Mismatches = append(sr.Mismatches, fmt.Sprintf("%s: fingerprint %016x != reference %016x", tag, r.Fingerprint, ref.Fingerprint))
		}
		if r.Opened != ref.Opened || r.Delivered != ref.Delivered {
			sr.Mismatches = append(sr.Mismatches, fmt.Sprintf("%s: opened/delivered %d/%d != reference %d/%d",
				tag, r.Opened, r.Delivered, ref.Opened, ref.Delivered))
		}
		if r.Violations != ref.Violations || len(r.Failures) != len(ref.Failures) {
			sr.Mismatches = append(sr.Mismatches, fmt.Sprintf("%s: verdicts %d/%d != reference %d/%d",
				tag, r.Violations, len(r.Failures), ref.Violations, len(ref.Failures)))
		}
		if ff && r.Skipped == 0 {
			sr.Mismatches = append(sr.Mismatches, fmt.Sprintf("%s: fast-forward never engaged", tag))
		}
	}
	return sr, nil
}
