package workload

import (
	"fmt"

	"daelite/internal/conformance"
	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/telemetry"
	"daelite/internal/topology"
)

// MutationSmoke proves the pack-as-test machinery can actually see
// corruption: it opens the pack's first broadcast-capable phase on a
// healthy cycle-accurate platform, drives its traffic, then flips a
// programmed slot-table entry on a tree (or path) link mid-broadcast.
// The conformance checkers must report table/contention violations; a
// harness that cannot see a planted flip proves nothing about real ones.
// Returns the violation count observed after the flip.
func MutationSmoke(c *Compiled, workers int) (uint64, error) {
	if len(c.Phases) == 0 {
		return 0, fmt.Errorf("workload: pack %s has no phases", c.Name())
	}
	// Prefer a broadcast phase — the flip must land during a multicast —
	// and fall back to the first phase for packs without one.
	ph := &c.Phases[0]
	for i := range c.Phases {
		if c.Phases[i].Kind == "broadcast" {
			ph = &c.Phases[i]
			break
		}
	}

	p, err := c.BuildPlatform(workers, false)
	if err != nil {
		return 0, err
	}
	defer p.Sim.Shutdown()
	reg := telemetry.NewRegistry()
	ck := conformance.Attach(p, reg, conformance.Options{SampleEvery: 32, LineRate: true})
	node := func(co ConnReq) core.ConnectionSpec {
		cs := core.ConnectionSpec{Src: p.Mesh.NI(co.Src.X, co.Src.Y, co.Src.NI), SlotsFwd: co.Slots}
		if co.Dst != nil {
			cs.Dst = p.Mesh.NI(co.Dst.X, co.Dst.Y, co.Dst.NI)
		}
		for _, d := range co.Dsts {
			cs.Dsts = append(cs.Dsts, p.Mesh.NI(d.X, d.Y, d.NI))
		}
		return cs
	}
	specs := make([]core.ConnectionSpec, len(ph.Conns))
	for i, cn := range ph.Conns {
		specs[i] = node(cn)
	}
	conns, _ := p.OpenBatch(specs)
	var victim topology.LinkID = -1
	for _, cn := range conns {
		if cn == nil {
			continue
		}
		if victim < 0 {
			// The flip targets a router's slot table, so the corrupted
			// hop must be router-owned (the first tree edge is the NI's
			// injection link).
			if cn.Tree != nil {
				for _, e := range cn.Tree.Edges {
					if p.Routers[p.Mesh.Graph.Link(e.Link).From] != nil {
						victim = e.Link
						break
					}
				}
			} else if cn.Fwd != nil && len(cn.Fwd.Paths[0].Path) >= 2 {
				victim = cn.Fwd.Paths[0].Path[1]
			}
		}
	}
	if victim < 0 {
		return 0, fmt.Errorf("workload: pack %s: no routed link to corrupt", c.Name())
	}
	if _, err := p.CompleteConfig(5_000_000); err != nil {
		return 0, err
	}
	for _, cn := range conns {
		if cn != nil && cn.State == core.Opening {
			cn.State = core.Open
		}
	}
	ck.Resync()
	p.Run(256)
	if ck.Violations() != 0 {
		return 0, fmt.Errorf("workload: healthy phase reported %d violations before the flip", ck.Violations())
	}

	link := p.Mesh.Graph.Link(victim)
	occ := p.Alloc.LinkOccupancy(link.ID)
	if occ.Count() == 0 {
		return 0, fmt.Errorf("workload: victim link %d carries no reservation", link.ID)
	}
	slot := occ.Slots()[0]
	if _, err := fault.Attach(p, c.Spec.Seed, fault.Fault{
		Kind: fault.SlotTableFlip, Router: link.From, Out: link.FromPort,
		Slot: slot, From: p.Cycle() + 8,
	}); err != nil {
		return 0, err
	}
	p.Run(512)
	caught := ck.ViolationCount(conformance.CheckTable) + ck.ViolationCount(conformance.CheckContention)
	if caught == 0 {
		return 0, fmt.Errorf("workload: planted slot-table flip on link %d went undetected", link.ID)
	}
	return caught, nil
}
