package workload

import (
	"fmt"

	"daelite/internal/spec"
)

// compileDNN expands the layer graph into the per-layer phase pairs the
// paper's traffic classes map onto: an M2C phase that multicasts the
// layer's weights from its memory tile to every consumer tile, then a
// C2C phase that carries the output activations to the next layer's
// tiles over unicast connections. Tile mapping is round-robin: source
// tile j of layer l feeds tile j mod T of layer l+1; a transfer whose
// source and destination coincide stays in local memory and emits no
// connection.
func compileDNN(s *Spec) ([]Phase, error) {
	d := s.DNN
	bpw := d.BytesPerWord
	if bpw == 0 {
		bpw = 4
	}
	var phases []Phase
	for i, l := range d.Layers {
		name := l.Name
		if name == "" {
			name = fmt.Sprintf("l%d", i)
		}
		mem := d.MemoryTiles[i%len(d.MemoryTiles)]
		for _, t := range l.Tiles {
			if t == mem {
				return nil, fmt.Errorf("workload: %s: tile (%d,%d,%d) coincides with its memory tile", name, t.X, t.Y, t.NI)
			}
		}
		weightWords := words(l.WeightBytes, bpw)
		bs := l.BroadcastSlots
		if bs == 0 {
			bs = 1
		}
		macs := l.MACs
		if macs == 0 {
			macs = uint64(l.Neurons) * weightWords
		}
		bcast := Phase{
			Name: name + ".weights", Kind: "broadcast", Layer: i,
			MACs: macs, MMemWords: weightWords,
		}
		cn := ConnReq{Name: name + ".m2c", Src: mem, Slots: bs, Words: weightWords}
		if len(l.Tiles) == 1 {
			t := l.Tiles[0]
			cn.Dst = &t
		} else {
			cn.Dsts = append([]spec.Coord(nil), l.Tiles...)
		}
		bcast.Conns = append(bcast.Conns, cn)
		phases = append(phases, bcast)

		if i == len(d.Layers)-1 {
			continue
		}
		next := d.Layers[i+1]
		actWords := words(l.ActivationBytes, bpw)
		perTile := (actWords + uint64(len(l.Tiles)) - 1) / uint64(len(l.Tiles))
		as := l.ActivationSlots
		if as == 0 {
			as = 1
		}
		acts := Phase{Name: name + ".acts", Kind: "activation", Layer: i}
		for j, src := range l.Tiles {
			dst := next.Tiles[j%len(next.Tiles)]
			if dst == src {
				continue // same tile in both layers: activations stay local
			}
			dc := dst
			acts.Conns = append(acts.Conns, ConnReq{
				Name: fmt.Sprintf("%s.c2c%d", name, j),
				Src:  src, Dst: &dc, Slots: as, Words: perTile,
			})
		}
		if len(acts.Conns) > 0 {
			phases = append(phases, acts)
		}
	}
	return phases, nil
}
