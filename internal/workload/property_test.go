package workload

// Property test for the DNN compiler's admissibility contract: for any
// seeded layer graph, (1) the multicast broadcast demand of every
// compiled phase, summed per link, never exceeds the wheel capacity the
// allocator actually claims — checked bit-for-bit against the allocator
// after opening the phase — and (2) tearing the phase down returns the
// allocator to its pre-phase fingerprint exactly.

import (
	"testing"

	"daelite/internal/conformance"
	"daelite/internal/core"
	"daelite/internal/sim"
	"daelite/internal/spec"
)

// randomDNNSpec expands a seed into a valid-by-construction DNN pack:
// random mesh, memory tiles, layer widths and transfer sizes. Consumer
// tiles never collide with memory tiles, so every draw must compile.
func randomDNNSpec(seed uint64) *Spec {
	rng := sim.NewRNG(seed)
	width := 3 + rng.Intn(2)
	height := 3 + rng.Intn(2)
	s := &Spec{
		Kind: "dnn", Name: "dnn-prop", Seed: seed,
		Mesh: spec.MeshSpec{Width: width, Height: height},
		DNN:  &DNNSpec{BytesPerWord: 4},
	}
	// Memory tiles on the top row, consumers strictly below it.
	nmem := 1 + rng.Intn(2)
	for i := 0; i < nmem; i++ {
		s.DNN.MemoryTiles = append(s.DNN.MemoryTiles, spec.Coord{X: i % width, Y: 0})
	}
	var pool []spec.Coord
	for y := 1; y < height; y++ {
		for x := 0; x < width; x++ {
			pool = append(pool, spec.Coord{X: x, Y: y})
		}
	}
	layers := 2 + rng.Intn(3)
	for l := 0; l < layers; l++ {
		// Random distinct tiles from the consumer pool.
		perm := make([]int, len(pool))
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		ntiles := 1 + rng.Intn(3)
		ls := LayerSpec{
			Neurons:         8 + rng.Intn(64),
			WeightBytes:     4 + rng.Intn(512),
			ActivationBytes: 4 + rng.Intn(256),
		}
		for i := 0; i < ntiles; i++ {
			ls.Tiles = append(ls.Tiles, pool[perm[i]])
		}
		s.DNN.Layers = append(s.DNN.Layers, ls)
	}
	return s
}

func TestDNNPackAdmissibilityProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		s := randomDNNSpec(seed)
		c, err := Compile(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p, err := c.BuildPlatform(1, false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		model := conformance.NewModel(p)
		wheel := p.Params.Wheel
		for pi := range c.Phases {
			ph := &c.Phases[pi]
			preFP := p.Alloc.Fingerprint()
			specs := make([]core.ConnectionSpec, len(ph.Conns))
			for i, cn := range ph.Conns {
				cs := core.ConnectionSpec{Src: p.Mesh.NI(cn.Src.X, cn.Src.Y, cn.Src.NI), SlotsFwd: cn.Slots}
				if cn.Dst != nil {
					cs.Dst = p.Mesh.NI(cn.Dst.X, cn.Dst.Y, cn.Dst.NI)
				}
				for _, d := range cn.Dsts {
					cs.Dsts = append(cs.Dsts, p.Mesh.NI(d.X, d.Y, d.NI))
				}
				specs[i] = cs
			}
			conns, errs := p.OpenBatch(specs)
			live := make([]*core.Connection, 0, len(conns))
			for i, cn := range conns {
				if cn == nil || errs[i] != nil {
					continue
				}
				live = append(live, cn)
			}
			if _, err := p.CompleteConfig(5_000_000); err != nil {
				t.Fatalf("seed %d phase %s: settle: %v", seed, ph.Name, err)
			}
			for _, cn := range live {
				if cn.State == core.Opening {
					cn.State = core.Open
				}
			}

			// Property 1: per-link demand claimed by the allocator equals
			// the model's closed-form occupancy and never exceeds the
			// wheel.
			occ := model.LinkOccupancy(live)
			for _, l := range p.Mesh.Links() {
				got := p.Alloc.LinkOccupancy(l.ID)
				if got.Count() > wheel {
					t.Fatalf("seed %d phase %s: link %d claims %d slots against a %d-slot wheel",
						seed, ph.Name, l.ID, got.Count(), wheel)
				}
				if want := occ[l.ID]; got.Bits != want.Bits {
					t.Fatalf("seed %d phase %s: link %d occupancy %#x, model says %#x",
						seed, ph.Name, l.ID, got.Bits, want.Bits)
				}
			}

			// Property 2: teardown restores the pre-phase allocator
			// fingerprint bit for bit.
			for _, cn := range live {
				if err := p.Close(cn); err != nil {
					t.Fatalf("seed %d phase %s: close: %v", seed, ph.Name, err)
				}
			}
			if _, err := p.CompleteConfig(5_000_000); err != nil {
				t.Fatalf("seed %d phase %s: settle teardown: %v", seed, ph.Name, err)
			}
			if got := p.Alloc.Fingerprint(); got != preFP {
				t.Fatalf("seed %d phase %s: teardown fingerprint %016x != pre-phase %016x",
					seed, ph.Name, got, preFP)
			}
		}
		p.Sim.Shutdown()
	}
}

// TestDNNPackPropertyEndToEnd runs one random pack through the full
// runner, whose differential checks subsume the static properties and
// add the latency and delivery laws.
func TestDNNPackPropertyEndToEnd(t *testing.T) {
	c, err := Compile(randomDNNSpec(99))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("random pack failed:\n%s\n%v", res.Summary(), res.Failures)
	}
}
