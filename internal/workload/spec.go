// Package workload compiles application-level scenario descriptions —
// DNN layer graphs and switch-fabric VOQ traffic matrices — into the
// phase-structured connection requests and traffic schedules the paper's
// TDM NoC was built to carry. A pack is a seeded, JSON-serializable spec
// (an extension of internal/spec's platform description); compiling it
// is deterministic, and running the compiled phases is simultaneously a
// differential correctness test: the conformance model predicts per-link
// occupancy, per-phase latency bounds and attained bandwidth in closed
// form, and the runner checks the simulation against every prediction
// while folding all observable behaviour into a bit-exact fingerprint.
package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"daelite/internal/core"
	"daelite/internal/spec"
)

// Spec is one scenario pack: a platform shape plus exactly one
// application description selected by Kind.
type Spec struct {
	// Kind selects the pack family: "dnn" or "switch".
	Kind string `json:"kind"`
	// Name labels the pack in reports; defaults to Kind.
	Name string `json:"name,omitempty"`
	// Seed drives every random draw of the compiler (switch-matrix
	// sampling, traffic payload seeds). A pack is a pure function of its
	// spec, so equal specs compile and run identically.
	Seed uint64 `json:"seed,omitempty"`
	// Mesh, Params and Host describe the platform, exactly as in
	// internal/spec.
	Mesh   spec.MeshSpec   `json:"mesh"`
	Params spec.ParamsSpec `json:"params,omitempty"`
	Host   spec.Coord      `json:"host,omitempty"`
	// DNN is the layer graph (Kind "dnn").
	DNN *DNNSpec `json:"dnn,omitempty"`
	// Switch is the VOQ traffic description (Kind "switch").
	Switch *SwitchSpec `json:"switch,omitempty"`
}

// DNNSpec maps a feed-forward layer graph onto the mesh, nocnn-style:
// weights stream from memory tiles to every consumer tile of a layer
// (M2C multicast), activations stream tile-to-tile between consecutive
// layers (C2C unicast).
type DNNSpec struct {
	// MemoryTiles hold the weights; layer l broadcasts from
	// MemoryTiles[l % len(MemoryTiles)].
	MemoryTiles []spec.Coord `json:"memoryTiles"`
	// Layers in execution order.
	Layers []LayerSpec `json:"layers"`
	// BytesPerWord converts transfer sizes to NoC words (default 4).
	BytesPerWord int `json:"bytesPerWord,omitempty"`
}

// LayerSpec is one layer of the graph.
type LayerSpec struct {
	Name string `json:"name,omitempty"`
	// Neurons in the layer (must be positive; sizes compute work).
	Neurons int `json:"neurons"`
	// Tiles the layer is mapped onto; weights are broadcast to all of
	// them, activations leave from all of them.
	Tiles []spec.Coord `json:"tiles"`
	// WeightBytes is the layer's total weight volume, broadcast from the
	// memory tile to every consumer tile (M2C).
	WeightBytes int `json:"weightBytes"`
	// ActivationBytes is the layer's total output activation volume,
	// sent tile-to-tile to the next layer (C2C). Required for every
	// layer except the last, where it is ignored.
	ActivationBytes int `json:"activationBytes,omitempty"`
	// MACs is the layer's multiply-accumulate count, priced by the
	// energy model; 0 defaults to Neurons × weight words.
	MACs uint64 `json:"macs,omitempty"`
	// BroadcastSlots / ActivationSlots are the TDM slots reserved per
	// connection of the respective phase (default 1 each).
	BroadcastSlots  int `json:"broadcastSlots,omitempty"`
	ActivationSlots int `json:"activationSlots,omitempty"`
}

// SwitchSpec generates Tiny Tera-style virtual-output-queue traffic:
// every NI is a switch port, and each phase opens an admissible
// connection matrix — uniform, diagonal, or hotspotted — whose per-port
// slot demand never exceeds the wheel, so any admission refusal is the
// fabric's own path contention, not an inadmissible request.
type SwitchSpec struct {
	// Pattern fixes the matrix family: "uniform", "diagonal" or
	// "hotspot". Empty cycles through all three, one per phase.
	Pattern string `json:"pattern,omitempty"`
	// Hotspot is the congested egress port (default: the last NI).
	Hotspot *spec.Coord `json:"hotspot,omitempty"`
	// HotspotFrac is the fraction of hotspot-phase connections aimed at
	// the hotspot port, within its admissible capacity (default 0.5).
	HotspotFrac float64 `json:"hotspotFrac,omitempty"`
	// Conns is the connection count drawn per phase (default: one per
	// port).
	Conns int `json:"conns,omitempty"`
	// Slots per connection (default 1).
	Slots int `json:"slots,omitempty"`
	// Cells per connection and words per cell size the bounded traffic
	// each connection carries (defaults 8 cells × 16 words).
	Cells     int `json:"cells,omitempty"`
	CellWords int `json:"cellWords,omitempty"`
	// Phases is the number of matrices to run (default 3, or 1 when
	// Pattern is fixed).
	Phases int `json:"phases,omitempty"`
}

// Parse reads and validates a pack spec from JSON. Unknown fields are
// rejected, exactly as in internal/spec.
func Parse(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Marshal renders the pack spec as indented JSON.
func (s *Spec) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// platformSpec is the platform slice of the pack, as an internal/spec
// description (no start-of-day connections; phases open their own).
func (s *Spec) platformSpec() spec.Spec {
	return spec.Spec{Mesh: s.Mesh, Params: s.Params, Host: s.Host}
}

// Resolved returns the effective wheel, slot-words and channel count
// after parameter defaulting — the budgets the compiler's admissibility
// accounting is checked against.
func (s *Spec) Resolved() (wheel, slotWords, channels int) {
	d := core.DefaultParams()
	wheel, slotWords, channels = d.Wheel, d.SlotWords, d.NumChannels
	if s.Params.Wheel != 0 {
		wheel = s.Params.Wheel
	}
	if s.Params.SlotWords != 0 {
		slotWords = s.Params.SlotWords
	}
	if s.Params.NumChannels != 0 {
		channels = s.Params.NumChannels
	}
	return wheel, slotWords, channels
}

// Validate checks structural consistency without compiling anything:
// platform shape, tile ranges, transfer sizes. The compiler additionally
// enforces per-port admissibility (see Compile).
func (s *Spec) Validate() error {
	ps := s.platformSpec()
	if err := ps.Validate(); err != nil {
		return err
	}
	inRange := func(c spec.Coord) error {
		probe := ps
		probe.Connections = []spec.ConnectionSpec{{Src: c, Dst: &c, SlotsFwd: 1}}
		return probe.Validate()
	}
	switch s.Kind {
	case "dnn":
		if s.DNN == nil {
			return fmt.Errorf("workload: kind dnn requires a dnn section")
		}
		if s.Switch != nil {
			return fmt.Errorf("workload: kind dnn must not carry a switch section")
		}
		return s.DNN.validate(inRange)
	case "switch":
		if s.Switch == nil {
			return fmt.Errorf("workload: kind switch requires a switch section")
		}
		if s.DNN != nil {
			return fmt.Errorf("workload: kind switch must not carry a dnn section")
		}
		return s.Switch.validate(inRange)
	default:
		return fmt.Errorf("workload: unknown pack kind %q", s.Kind)
	}
}

func (d *DNNSpec) validate(inRange func(spec.Coord) error) error {
	if len(d.MemoryTiles) == 0 {
		return fmt.Errorf("workload: dnn needs at least one memory tile")
	}
	if d.BytesPerWord < 0 {
		return fmt.Errorf("workload: bytesPerWord must be non-negative")
	}
	for i, m := range d.MemoryTiles {
		if err := inRange(m); err != nil {
			return fmt.Errorf("workload: memory tile %d: %w", i, err)
		}
	}
	if len(d.Layers) == 0 {
		return fmt.Errorf("workload: dnn needs at least one layer")
	}
	for i, l := range d.Layers {
		name := l.Name
		if name == "" {
			name = fmt.Sprintf("layer%d", i)
		}
		if l.Neurons <= 0 {
			return fmt.Errorf("workload: %s: neurons must be positive", name)
		}
		if len(l.Tiles) == 0 {
			return fmt.Errorf("workload: %s: needs at least one tile", name)
		}
		if l.WeightBytes <= 0 {
			return fmt.Errorf("workload: %s: weightBytes must be positive (zero-size transfers are invalid)", name)
		}
		if l.ActivationBytes < 0 {
			return fmt.Errorf("workload: %s: activationBytes must be non-negative", name)
		}
		if i < len(d.Layers)-1 && l.ActivationBytes == 0 {
			return fmt.Errorf("workload: %s: activationBytes must be positive before another layer (zero-size transfers are invalid)", name)
		}
		if l.BroadcastSlots < 0 || l.ActivationSlots < 0 {
			return fmt.Errorf("workload: %s: slot counts must be non-negative", name)
		}
		seen := map[spec.Coord]bool{}
		for j, tl := range l.Tiles {
			if err := inRange(tl); err != nil {
				return fmt.Errorf("workload: %s tile %d: %w", name, j, err)
			}
			if seen[tl] {
				return fmt.Errorf("workload: %s: duplicate tile (%d,%d,%d)", name, tl.X, tl.Y, tl.NI)
			}
			seen[tl] = true
		}
	}
	return nil
}

func (w *SwitchSpec) validate(inRange func(spec.Coord) error) error {
	switch w.Pattern {
	case "", "uniform", "diagonal", "hotspot":
	default:
		return fmt.Errorf("workload: unknown switch pattern %q", w.Pattern)
	}
	if w.Hotspot != nil {
		if err := inRange(*w.Hotspot); err != nil {
			return fmt.Errorf("workload: hotspot: %w", err)
		}
	}
	if w.HotspotFrac < 0 || w.HotspotFrac > 1 {
		return fmt.Errorf("workload: hotspotFrac %v outside [0,1]", w.HotspotFrac)
	}
	if w.Conns < 0 || w.Slots < 0 || w.Cells < 0 || w.CellWords < 0 || w.Phases < 0 {
		return fmt.Errorf("workload: switch counts must be non-negative")
	}
	if w.Phases > 256 {
		return fmt.Errorf("workload: %d phases exceed the 256-phase cap", w.Phases)
	}
	if w.Conns > 4096 {
		return fmt.Errorf("workload: %d connections per phase exceed the 4096 cap", w.Conns)
	}
	return nil
}
