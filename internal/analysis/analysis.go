// Package analysis computes the analytical service guarantees that make a
// TDM NoC usable for real-time systems: guaranteed bandwidth per
// connection, worst-case scheduling latency (the wait for the next owned
// slot), worst-case end-to-end latency, and the bandwidth overheads the
// paper quantifies for aelite (packet headers, reserved configuration
// slots). Simulation results are checked against these bounds in tests —
// the measured value may never exceed the guarantee.
package analysis

import (
	"math"

	"daelite/internal/slots"
)

// GuaranteedBandwidth returns the guaranteed throughput of a reservation
// in words per cycle: count slots of a wheel-slot wheel, each slot
// carrying its full payload (daelite has no header overhead).
func GuaranteedBandwidth(mask slots.Mask) float64 {
	return float64(mask.Count()) / float64(mask.Size)
}

// EffectiveBandwidthAelite returns the payload throughput of an aelite
// reservation in words per cycle: each packet of up to span consecutive
// slots spends one word on the header. span is the typical consecutive-
// slot run (1..3).
func EffectiveBandwidthAelite(mask slots.Mask, slotWords, span int) float64 {
	if span < 1 {
		span = 1
	}
	if span > 3 {
		span = 3
	}
	raw := float64(mask.Count()) / float64(mask.Size)
	payloadPerPacket := float64(span*slotWords - 1)
	return raw * payloadPerPacket / float64(span*slotWords)
}

// HeaderOverheadAelite returns the fraction of reserved bandwidth lost to
// headers for a given packet span: 1/(span*slotWords). With 3-word slots
// this brackets the paper's 11 % (span 3) to 33 % (span 1).
func HeaderOverheadAelite(slotWords, span int) float64 {
	if span < 1 {
		span = 1
	}
	if span > 3 {
		span = 3
	}
	return 1 / float64(span*slotWords)
}

// ConfigSlotLoss returns the fraction of NI-link bandwidth aelite loses to
// its reserved configuration slots: reserved/wheel (the paper's 6.25 % at
// one slot of a 16-slot wheel). daelite's loss is zero — its configuration
// travels on dedicated links.
func ConfigSlotLoss(reserved, wheel int) float64 {
	return float64(reserved) / float64(wheel)
}

// MaxSlotGapCycles returns the worst-case scheduling latency of a
// reservation in cycles: the longest wait from a word becoming ready at
// the NI until the start of the next owned slot.
func MaxSlotGapCycles(mask slots.Mask, slotWords int) int {
	ss := mask.Slots()
	if len(ss) == 0 {
		return math.MaxInt32
	}
	if len(ss) == mask.Size {
		return slotWords // every slot owned: at most one slot of wait
	}
	maxGap := 0
	for i, s := range ss {
		next := ss[(i+1)%len(ss)]
		gap := next - s
		if gap <= 0 {
			gap += mask.Size
		}
		if gap > maxGap {
			maxGap = gap
		}
	}
	return maxGap * slotWords
}

// PathLatencyCycles returns the network traversal latency of a daelite
// path of links hops: two cycles per hop (link + crossbar registers).
func PathLatencyCycles(links int) int { return 2 * links }

// PathLatencyCyclesPipelined returns the traversal latency of a path
// whose total slot advance (standard hops plus pipeline stages of long or
// mesochronous links) is advance slots of slotWords words each: every
// slot of advance costs slotWords cycles.
func PathLatencyCyclesPipelined(advance, slotWords int) int {
	return advance * slotWords
}

// PathLatencyCyclesAelite returns the aelite traversal latency over the
// same path: three cycles per router plus the NI ingress registers. A path
// of L links visits L-1 routers.
func PathLatencyCyclesAelite(links int) int {
	routers := links - 1
	if routers < 0 {
		routers = 0
	}
	return 3*routers + 2
}

// WorstCaseLatency bounds the end-to-end latency of a word on a daelite
// connection: worst scheduling wait plus slot serialization plus path
// traversal.
func WorstCaseLatency(mask slots.Mask, slotWords, pathLinks int) int {
	return MaxSlotGapCycles(mask, slotWords) + slotWords + PathLatencyCycles(pathLinks)
}

// SetupWordsDaelite returns the number of 7-bit configuration words needed
// to set up one daelite path of pathLinks links (elements = links + 1
// pairs), as in the paper's "ideal" Table III rows: header, mask words,
// and two words per element.
func SetupWordsDaelite(pathLinks, wheel int) int {
	elements := pathLinks + 1
	return 1 + (wheel+6)/7 + 2*elements
}

// SetupCyclesDaeliteIdeal returns the analytic set-up time of a daelite
// connection: forward and reverse path words serialized one per cycle,
// plus tree propagation to the farthest affected element and the
// cool-down after each packet.
func SetupCyclesDaeliteIdeal(pathLinks, wheel, treeDepth, cooldown int) int {
	words := SetupWordsDaelite(pathLinks, wheel) + SetupWordsDaelite(pathLinks, wheel)
	propagation := 2 * (treeDepth + 1)
	return words + propagation + 2*cooldown
}

// SetupOpsAelite returns the number of register-write round trips needed
// to set up one aelite connection: route, remote queue, credit and flag
// registers plus one write per reserved slot, at each endpoint.
func SetupOpsAelite(slotsFwd, slotsRev int) int {
	return (4 + slotsFwd) + (4 + slotsRev)
}

// SetupCyclesAeliteIdeal estimates aelite set-up time: each operation is a
// request and acknowledgement over the network (3 cycles per router hop
// each way) plus an average half-wheel wait for the configuration slot on
// both paths.
func SetupCyclesAeliteIdeal(slotsFwd, slotsRev, hops, wheel, slotWords int) int {
	ops := SetupOpsAelite(slotsFwd, slotsRev)
	slotWait := wheel * slotWords / 2
	roundTrip := 2*(3*hops+2) + 2*slotWait
	return ops * roundTrip
}

// LRServer is the latency-rate abstraction of a TDM connection, the form
// in which NoC guarantees enter system-level real-time analysis (the
// CoMPSoC verification flow of [15]): after at most Theta cycles of
// initial latency the connection serves at least Rho words per cycle.
type LRServer struct {
	// Theta is the service latency in cycles.
	Theta float64
	// Rho is the guaranteed rate in words per cycle.
	Rho float64
}

// LRServerFor derives the latency-rate parameters of a daelite
// reservation: the worst-case scheduling wait plus traversal is the
// latency; the slot share is the rate.
func LRServerFor(mask slots.Mask, slotWords, pathLinks int) LRServer {
	return LRServer{
		Theta: float64(WorstCaseLatency(mask, slotWords, pathLinks)),
		Rho:   GuaranteedBandwidth(mask),
	}
}

// MaxDelay bounds the delay of any word of a (sigma, rho)-constrained
// arrival stream (burst size sigma words, long-term rate rho <= Rho)
// through the server: Theta + sigma/Rho.
func (s LRServer) MaxDelay(sigma float64) float64 {
	if s.Rho <= 0 {
		return math.Inf(1)
	}
	return s.Theta + sigma/s.Rho
}

// MaxBacklog bounds the words queued at the source: sigma plus what
// arrives during the service latency.
func (s LRServer) MaxBacklog(sigma, rho float64) float64 {
	return sigma + rho*s.Theta
}
