package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"daelite/internal/slots"
)

func TestGuaranteedBandwidth(t *testing.T) {
	if got := GuaranteedBandwidth(slots.MaskOf(8, 0, 1)); got != 0.25 {
		t.Fatalf("bandwidth = %v, want 0.25", got)
	}
	if got := GuaranteedBandwidth(slots.MaskOf(16, 0)); got != 1.0/16 {
		t.Fatalf("bandwidth = %v", got)
	}
}

// TestHeaderOverheadBrackets pins the paper's numbers: aelite header
// overhead is 33% for one-slot packets and 11% for three-slot packets;
// daelite has none.
func TestHeaderOverheadBrackets(t *testing.T) {
	if got := HeaderOverheadAelite(3, 1); got < 0.33 || got > 0.34 {
		t.Fatalf("1-slot packet overhead = %v, want ~1/3", got)
	}
	if got := HeaderOverheadAelite(3, 3); got < 0.11 || got > 0.12 {
		t.Fatalf("3-slot packet overhead = %v, want ~1/9", got)
	}
	// Clamping.
	if HeaderOverheadAelite(3, 0) != HeaderOverheadAelite(3, 1) {
		t.Fatal("span clamp low broken")
	}
	if HeaderOverheadAelite(3, 9) != HeaderOverheadAelite(3, 3) {
		t.Fatal("span clamp high broken")
	}
}

func TestEffectiveBandwidthConsistent(t *testing.T) {
	mask := slots.MaskOf(16, 0, 4, 8, 12)
	raw := GuaranteedBandwidth(mask)
	for span := 1; span <= 3; span++ {
		eff := EffectiveBandwidthAelite(mask, 3, span)
		want := raw * (1 - HeaderOverheadAelite(3, span))
		if diff := eff - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("span %d: eff %v != raw*(1-ovh) %v", span, eff, want)
		}
	}
}

// TestConfigSlotLoss pins the paper's 6.25% at a 16-slot wheel.
func TestConfigSlotLoss(t *testing.T) {
	if got := ConfigSlotLoss(1, 16); got != 0.0625 {
		t.Fatalf("loss = %v, want 0.0625", got)
	}
	if got := ConfigSlotLoss(1, 32); got != 0.03125 {
		t.Fatalf("loss = %v", got)
	}
}

func TestMaxSlotGapCycles(t *testing.T) {
	// Slots {0,4} of 8 with 2-word slots: worst gap is 4 slots = 8
	// cycles.
	if got := MaxSlotGapCycles(slots.MaskOf(8, 0, 4), 2); got != 8 {
		t.Fatalf("gap = %d, want 8", got)
	}
	// A single slot waits a full wheel.
	if got := MaxSlotGapCycles(slots.MaskOf(8, 3), 2); got != 16 {
		t.Fatalf("gap = %d, want 16", got)
	}
	// All slots owned: one slot.
	full := slots.Mask{Bits: 0xFF, Size: 8}
	if got := MaxSlotGapCycles(full, 2); got != 2 {
		t.Fatalf("gap = %d, want 2", got)
	}
	// Empty mask: effectively unbounded.
	if got := MaxSlotGapCycles(slots.NewMask(8), 2); got < 1<<30 {
		t.Fatalf("empty mask gap = %d", got)
	}
}

func TestMaxSlotGapProperty(t *testing.T) {
	f := func(bits uint16, sw uint8) bool {
		mask := slots.Mask{Bits: uint64(bits), Size: 16}
		if mask.Empty() {
			return true
		}
		slotWords := int(sw%3) + 1
		gap := MaxSlotGapCycles(mask, slotWords)
		// Bounded by a full wheel, at least one slot.
		return gap >= slotWords && gap <= 16*slotWords
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSmallSlotsImproveSchedulingLatency is experiment E8's analytical
// core: with the same bandwidth fraction, smaller slots reduce the
// worst-case wait. daelite can use 2-word (even 1-word) slots; aelite is
// stuck at 3 because of header amortization.
func TestSmallSlotsImproveSchedulingLatency(t *testing.T) {
	mask := slots.MaskOf(8, 0, 4)
	w1 := MaxSlotGapCycles(mask, 1)
	w2 := MaxSlotGapCycles(mask, 2)
	w3 := MaxSlotGapCycles(mask, 3)
	if !(w1 < w2 && w2 < w3) {
		t.Fatalf("scheduling latency not monotone in slot size: %d %d %d", w1, w2, w3)
	}
}

func TestPathLatency(t *testing.T) {
	// 5-link daelite path: 10 cycles. Matches the measured value in
	// core's TestTraversalLatencyTwoCyclesPerHop.
	if got := PathLatencyCycles(5); got != 10 {
		t.Fatalf("daelite latency = %d", got)
	}
	// Same path in aelite: 4 routers x 3 + 2 = 14, as measured in the
	// aelite package test.
	if got := PathLatencyCyclesAelite(5); got != 14 {
		t.Fatalf("aelite latency = %d", got)
	}
	if PathLatencyCyclesAelite(0) != 2 {
		t.Fatal("degenerate path latency wrong")
	}
	// The reduction for long paths approaches the paper's 33%.
	d := float64(PathLatencyCycles(10))
	a := float64(PathLatencyCyclesAelite(10) - 2) // router portion
	if red := 1 - (d-2)/a; red < 0.30 || red > 0.36 {
		t.Fatalf("per-hop latency reduction = %.2f, want ~0.33", red)
	}
}

func TestWorstCaseLatencyComposition(t *testing.T) {
	mask := slots.MaskOf(8, 0)
	got := WorstCaseLatency(mask, 2, 4)
	want := 16 + 2 + 8
	if got != want {
		t.Fatalf("WCL = %d, want %d", got, want)
	}
}

// TestSetupWordsMatchesFig6 pins the paper's Fig. 6 example: an 8-slot
// wheel and a 3-link path need 1 header + 2 mask words + 4 pairs x 2 = 11
// words — the three 32-bit host words of the example.
func TestSetupWordsMatchesFig6(t *testing.T) {
	if got := SetupWordsDaelite(3, 8); got != 11 {
		t.Fatalf("setup words = %d, want 11", got)
	}
}

func TestSetupTimeModels(t *testing.T) {
	d := SetupCyclesDaeliteIdeal(4, 8, 4, 4)
	a := SetupCyclesAeliteIdeal(2, 1, 4, 16, 3)
	if d <= 0 || a <= 0 {
		t.Fatal("non-positive setup estimates")
	}
	// The order-of-magnitude claim must hold analytically too.
	if ratio := float64(a) / float64(d); ratio < 5 {
		t.Fatalf("aelite/daelite setup ratio = %.1f, want >= 5", ratio)
	}
	// daelite set-up is independent of slot count, aelite's is not.
	if SetupCyclesAeliteIdeal(8, 1, 4, 16, 3) <= a {
		t.Fatal("aelite setup not monotone in slots")
	}
}

func TestLRServer(t *testing.T) {
	mask := slots.MaskOf(8, 0, 4)
	s := LRServerFor(mask, 2, 4)
	if s.Rho != 0.25 {
		t.Fatalf("rho = %v", s.Rho)
	}
	if s.Theta != float64(WorstCaseLatency(mask, 2, 4)) {
		t.Fatalf("theta = %v", s.Theta)
	}
	// A burst of 8 words adds 8/0.25 = 32 cycles to the bound.
	if got := s.MaxDelay(8); got != s.Theta+32 {
		t.Fatalf("MaxDelay = %v", got)
	}
	if got := s.MaxBacklog(8, 0.1); got != 8+0.1*s.Theta {
		t.Fatalf("MaxBacklog = %v", got)
	}
	zero := LRServer{}
	if !math.IsInf(zero.MaxDelay(1), 1) {
		t.Fatal("zero-rate server must have infinite delay bound")
	}
}
