package daelite

// The checked-in example packs under examples/workloads/ are the files
// the -workload CLI modes and the CI workloads job run; this test pins
// them to the in-tree constructors so they cannot rot: each file must
// parse, compile, and compile to exactly what the constructor compiles
// to (same platform description, same phase schedule).

import (
	"os"
	"reflect"
	"testing"

	"daelite/internal/workload"
)

func TestExamplePackFilesMatchConstructors(t *testing.T) {
	cases := []struct {
		path string
		want *workload.Spec
	}{
		{"examples/workloads/dnn.json", workload.ExampleDNN()},
		{"examples/workloads/tinytera.json", workload.ExampleTinyTera("hotspot")},
	}
	for _, tc := range cases {
		t.Run(tc.path, func(t *testing.T) {
			f, err := os.Open(tc.path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			got, err := workload.Parse(f)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			gc, err := workload.Compile(got)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			wc, err := workload.Compile(tc.want)
			if err != nil {
				t.Fatalf("compile constructor: %v", err)
			}
			if gc.Name() != wc.Name() {
				t.Fatalf("pack name %q, constructor says %q", gc.Name(), wc.Name())
			}
			if !reflect.DeepEqual(gc.Platform, wc.Platform) {
				t.Errorf("platform description diverged from the constructor's")
			}
			if !reflect.DeepEqual(gc.Phases, wc.Phases) {
				t.Errorf("phase schedule diverged from the constructor's")
			}
		})
	}
}
