package daelite

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded outputs). Each benchmark runs the corresponding experiment and
// reports its headline metrics; `cmd/daelite-bench` prints the full tables.
//
// Run with: go test -bench=. -benchmem

import (
	"testing"

	"daelite/internal/core"
	"daelite/internal/experiments"
	"daelite/internal/phit"
	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/topology"
)

func reportMetrics(b *testing.B, keys map[string]string, run func() (*experiments.Result, error)) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for metric, unit := range keys {
		if v, ok := last.Metrics[metric]; ok {
			b.ReportMetric(v, unit)
		} else {
			b.Fatalf("metric %q missing", metric)
		}
	}
}

// BenchmarkTableI_FeatureMatrix regenerates Table I (experiment E1).
func BenchmarkTableI_FeatureMatrix(b *testing.B) {
	reportMetrics(b, map[string]string{"rows": "rows"}, experiments.TableIFeatures)
}

// BenchmarkTableII_Area regenerates Table II (E2): area reductions from
// the gate-equivalent model; the reported metric is the worst deviation
// from the paper's percentages, in points.
func BenchmarkTableII_Area(b *testing.B) {
	reportMetrics(b, map[string]string{"worst_deviation_points": "pts-vs-paper"}, experiments.TableIIArea)
}

// BenchmarkTableIII_Setup regenerates Table III (E3): cycle-accurate
// connection set-up through daelite's broadcast tree versus aelite's
// network-carried register writes. Headline: mean speed-up (paper: one
// order of magnitude).
func BenchmarkTableIII_Setup(b *testing.B) {
	reportMetrics(b, map[string]string{
		"mean_speedup":             "x-speedup",
		"daelite_slot_sensitivity": "daelite-4slot/1slot",
		"aelite_slot_sensitivity":  "aelite-4slot/1slot",
	}, experiments.TableIIISetup)
}

// BenchmarkLatency_Traversal regenerates the 33%-latency claim (E4): 2 vs
// 3 cycles per hop measured end to end.
func BenchmarkLatency_Traversal(b *testing.B) {
	reportMetrics(b, map[string]string{"mean_reduction": "frac-reduction"}, experiments.TraversalLatency)
}

// BenchmarkHeaderOverhead regenerates the payload-efficiency claim (E5):
// daelite has no header overhead, aelite loses 11-33%.
func BenchmarkHeaderOverhead(b *testing.B) {
	reportMetrics(b, map[string]string{
		"daelite_efficiency":          "daelite-efficiency",
		"aelite_overhead_consecutive": "aelite-ovh-3slot",
		"aelite_overhead_scattered":   "aelite-ovh-1slot",
	}, experiments.HeaderOverhead)
}

// BenchmarkConfigSlotLoss regenerates the reserved-slot claim (E6): 6.25%
// of NI-link bandwidth lost by aelite at a 16-slot wheel.
func BenchmarkConfigSlotLoss(b *testing.B) {
	reportMetrics(b, map[string]string{"aelite_loss_16": "frac-loss"}, experiments.ConfigSlotLoss)
}

// BenchmarkMultipathGain regenerates the multipath claim (E7): splitting
// connections over several paths admits more bandwidth (paper cites 24%
// average from [29]).
func BenchmarkMultipathGain(b *testing.B) {
	reportMetrics(b, map[string]string{"mean_gain": "frac-gain"}, experiments.MultipathGain)
}

// BenchmarkSchedulingLatency regenerates the slot-size claim (E8).
func BenchmarkSchedulingLatency(b *testing.B) {
	reportMetrics(b, map[string]string{
		"wait_sw1": "cycles-1word",
		"wait_sw2": "cycles-2word",
		"wait_sw3": "cycles-3word",
	}, experiments.SchedulingLatency)
}

// BenchmarkFig6Setup replays the paper's Fig. 6 path set-up example (E9)
// through the real decoders and measures it.
func BenchmarkFig6Setup(b *testing.B) {
	reportMetrics(b, map[string]string{
		"setup_cycles":     "cycles",
		"setup_words":      "cfg-words",
		"host_words_32bit": "host-words",
	}, experiments.Fig6PathSetup)
}

// BenchmarkMulticastTreeVsUnicast regenerates Fig. 7's efficiency
// argument (E10).
func BenchmarkMulticastTreeVsUnicast(b *testing.B) {
	reportMetrics(b, map[string]string{
		"tree_slots_n6":    "tree-srclink-slots",
		"unicast_slots_n6": "unicast-srclink-slots",
	}, experiments.MulticastTreeVsUnicast)
}

// BenchmarkContentionFreedom soaks the contention-free invariant (E11).
func BenchmarkContentionFreedom(b *testing.B) {
	reportMetrics(b, map[string]string{"violations": "violations"}, experiments.ContentionFreedom)
}

// BenchmarkCriticalPath regenerates the frequency claim (E12).
func BenchmarkCriticalPath(b *testing.B) {
	reportMetrics(b, map[string]string{
		"daelite_mhz": "daelite-MHz",
		"aelite_mhz":  "aelite-MHz",
	}, experiments.CriticalPath)
}

// BenchmarkUseCaseSwitch regenerates the use-case reconfiguration
// scenario (E13).
func BenchmarkUseCaseSwitch(b *testing.B) {
	reportMetrics(b, map[string]string{"switch_cycles": "cycles"}, experiments.UseCaseSwitch)
}

// BenchmarkFaultRepair regenerates the chaos experiment (E15): repair
// latency after a link failure, daelite's tree-configured re-set-up versus
// aelite's register-written one.
func BenchmarkFaultRepair(b *testing.B) {
	reportMetrics(b, map[string]string{
		"repair_cycles":         "cycles-repair",
		"aelite_resetup_cycles": "cycles-aelite",
		"resetup_speedup":       "x-speedup",
	}, experiments.FaultRepair)
}

// --- Micro-benchmarks of the core machinery ---

// benchPlatformCycle measures raw simulation throughput of a loaded 4x4
// platform (cycles per second of wall clock drive the harness cost),
// optionally with a telemetry registry attached and harvesting, and
// optionally with the causal tracer attached.
func benchPlatformCycle(b *testing.B, withTelemetry, withTracing bool) {
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	if withTelemetry {
		p.AttachTelemetry(telemetry.NewRegistry(), 0)
	}
	if withTracing {
		p.AttachTracer(tracing.New(tracing.Options{}))
	}
	c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 1, 0), Dst: p.Mesh.NI(3, 3, 0), SlotsFwd: 2})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.AwaitOpen(c, 100000); err != nil {
		b.Fatal(err)
	}
	src := p.NI(c.Spec.Src)
	dst := p.NI(c.Spec.Dst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Send(c.SrcChannel, phit.Word(i))
		p.Run(1)
		for {
			if _, ok := dst.Recv(c.DstChannel); !ok {
				break
			}
		}
	}
}

// BenchmarkPlatformCycle is the baseline simulation throughput, telemetry
// detached — the cost every run pays.
func BenchmarkPlatformCycle(b *testing.B) { benchPlatformCycle(b, false, false) }

// BenchmarkPlatformCycleTelemetry is the same platform with a telemetry
// registry attached at the default harvest interval; the gap to
// BenchmarkPlatformCycle is the observability overhead the cost contract
// bounds (<= 5%, gated by daelite-benchdiff).
func BenchmarkPlatformCycleTelemetry(b *testing.B) { benchPlatformCycle(b, true, false) }

// BenchmarkPlatformCycleTracing is the same platform with the causal
// tracer attached. Spans are created only around configuration
// transactions, never on the per-cycle datapath, so steady-state
// stepping must stay inside the same <= 5% cost contract as telemetry.
func BenchmarkPlatformCycleTracing(b *testing.B) { benchPlatformCycle(b, false, true) }

// BenchmarkPlatformCycleFastForward measures the fast-forward
// machinery's floor: the same loaded 4x4 platform as
// BenchmarkPlatformCycle, drained and settled with fast-forwarding
// armed. One op runs a whole hyper-period, which the kernel skips in
// closed form — the cost is the quiescence re-scan plus the skip
// arithmetic and catch-up hooks, not per-component evaluation. The gap
// to BenchmarkPlatformCycle (times the hyper-period length) is the
// cycles/sec win on settled platforms; daelite-benchdiff gates it
// against regression like the rest of the PlatformCycle trio.
func BenchmarkPlatformCycleFastForward(b *testing.B) {
	params := core.DefaultParams()
	params.FastForward = true
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1}, params, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 1, 0), Dst: p.Mesh.NI(3, 3, 0), SlotsFwd: 2})
	if err != nil {
		b.Fatal(err)
	}
	if err := p.AwaitOpen(c, 100000); err != nil {
		b.Fatal(err)
	}
	period := uint64(p.Params.Wheel * p.Params.SlotWords)
	p.Run(20 * period) // through the settle window; skipping engages
	if p.Sim.SkippedCycles() == 0 {
		b.Fatal("fast-forward never engaged on the drained platform")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(period)
	}
	b.ReportMetric(float64(period)*float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
}

// benchBigMesh measures raw kernel throughput (one simulated cycle per
// op) on the full 16x16 torus platform — 512 elements set up through six
// hierarchical config regions, the size the parallel kernel targets. The
// 7-bit config ID space caps a single region at 127 elements; the
// region partition is what lets this platform configure at all.
func benchBigMesh(b *testing.B, workers int) {
	bm, err := experiments.BuildBigMesh(16, 16, 8, workers)
	if err != nil {
		b.Fatal(err)
	}
	defer bm.Sim.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Run(1)
	}
}

// BenchmarkBigMesh16x16 runs the big mesh on the sequential kernel.
func BenchmarkBigMesh16x16(b *testing.B) { benchBigMesh(b, 1) }

// BenchmarkBigMesh16x16Par runs the big mesh with one worker per CPU;
// comparing against BenchmarkBigMesh16x16 gives the parallel speedup on
// this machine (the ISSUE's >=2x target; see also experiment E16).
func BenchmarkBigMesh16x16Par(b *testing.B) { benchBigMesh(b, 0) }

// BenchmarkConnectionOpenClose measures the host-side cost of a full
// connection lifecycle including simulation until settled.
func BenchmarkConnectionOpenClose(b *testing.B) {
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1}, core.DefaultParams(), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(1, 0, 0), Dst: p.Mesh.NI(2, 2, 0), SlotsFwd: 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.AwaitOpen(c, 100000); err != nil {
			b.Fatal(err)
		}
		if err := p.Close(c); err != nil {
			b.Fatal(err)
		}
		if _, err := p.CompleteConfig(100000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design-choice sensitivity, DESIGN.md §5) ---

// BenchmarkAblationWheelSize sweeps the TDM wheel size.
func BenchmarkAblationWheelSize(b *testing.B) {
	reportMetrics(b, map[string]string{
		"setup_w8":  "cycles-8slots",
		"setup_w64": "cycles-64slots",
	}, experiments.AblationWheelSize)
}

// BenchmarkAblationCooldown sweeps the configuration cool-down.
func BenchmarkAblationCooldown(b *testing.B) {
	reportMetrics(b, map[string]string{
		"setup_cd0":  "cycles-cd0",
		"setup_cd16": "cycles-cd16",
	}, experiments.AblationCooldown)
}

// BenchmarkAblationTreeDepth sweeps the host placement.
func BenchmarkAblationTreeDepth(b *testing.B) {
	reportMetrics(b, map[string]string{
		"setup_host00": "cycles-corner",
		"setup_host11": "cycles-central",
	}, experiments.AblationTreeDepth)
}

// BenchmarkAblationQueueDepth sweeps the NI receive-queue depth.
func BenchmarkAblationQueueDepth(b *testing.B) {
	reportMetrics(b, map[string]string{
		"rate_d2":  "wpc-depth2",
		"rate_d32": "wpc-depth32",
	}, experiments.AblationQueueDepth)
}

// BenchmarkAttainedBandwidth regenerates E14: attained equals reserved
// under simultaneous saturation (TDM exclusivity).
func BenchmarkAttainedBandwidth(b *testing.B) {
	reportMetrics(b, map[string]string{"worst_fraction": "attained/reserved"}, experiments.AttainedBandwidth)
}

// BenchmarkAblationLongLinks sweeps pipeline stages on long links.
func BenchmarkAblationLongLinks(b *testing.B) {
	reportMetrics(b, map[string]string{
		"latency_s0": "cycles-0stages",
		"latency_s4": "cycles-4stages",
	}, experiments.AblationLongLinks)
}

// BenchmarkSlotPlacement sweeps clustered vs spread slot selection (A8).
func BenchmarkSlotPlacement(b *testing.B) {
	reportMetrics(b, map[string]string{
		"clustered_worst": "cycles-clustered",
		"spread_worst":    "cycles-spread",
	}, experiments.SlotPlacement)
}

// BenchmarkPartialReconfig measures grafting a destination onto a live
// multicast tree (A9).
func BenchmarkPartialReconfig(b *testing.B) {
	reportMetrics(b, map[string]string{
		"full_setup": "cycles-full-setup",
		"graft_2":    "cycles-graft",
	}, experiments.PartialReconfig)
}
