package daelite

// The parallel-kernel determinism soak: a full platform under seeded CBR
// traffic, fault injection and online repair must produce bit-identical
// results for every worker count. A probe fingerprints every NI output
// wire every cycle, so even a single transiently different flit anywhere
// in the network — not just a different end-to-end outcome — fails the
// comparison. This is the system-level counterpart of the kernel-level
// tests in internal/sim and internal/experiments.

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"daelite/internal/core"
	"daelite/internal/experiments"
	"daelite/internal/fault"
	"daelite/internal/sim"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

// fnvMix folds v into an FNV-1a style running hash.
func fnvMix(h, v uint64) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xFF
		h *= 1099511628211
	}
	return h
}

// soakResult captures everything observable about one soak run.
type soakResult struct {
	wireHash  uint64
	sent      uint64
	received  uint64
	ooo       uint64
	repairs   int
	activated uint64
	endCycle  uint64
}

// runChaosSoak builds a 4x4 platform with the given kernel worker count,
// opens seeded connections with CBR sources and sinks, schedules link
// failures mid-run, and repairs stalled connections as the health monitor
// latches them. Everything is derived from seed; the return value is a
// pure function of (seed, cycles) and must not depend on workers.
func runChaosSoak(t *testing.T, workers int, seed uint64, cycles int) soakResult {
	t.Helper()
	params := core.DefaultParams()
	params.Workers = workers
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1}, params, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(seed)

	type stream struct {
		src  *traffic.Source
		sink *traffic.Sink
	}
	var streams []stream
	tries := 0
	for len(streams) < 5 && tries < 100 {
		tries++
		s := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
		d := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
		if s == d {
			continue
		}
		c, err := p.Open(core.ConnectionSpec{Src: s, Dst: d, SlotsFwd: 1 + rng.Intn(2)})
		if err != nil {
			continue
		}
		if err := p.AwaitOpen(c, 1_000_000); err != nil {
			t.Fatal(err)
		}
		src := traffic.NewSource(p.Sim, fmt.Sprintf("src%d", c.ID), p.NI(s), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.04 + 0.02*float64(rng.Intn(3)), Seed: rng.Uint64()})
		sink := traffic.NewSink(p.Sim, fmt.Sprintf("sink%d", c.ID), p.NI(d), c.DstChannel)
		streams = append(streams, stream{src: src, sink: sink})
	}
	if len(streams) == 0 {
		t.Fatal("no connections could be opened")
	}

	// Two seeded link failures spread across the soak window.
	sites := fault.PickLinks(rng, fault.RouterLinks(p), 2)
	var faults []fault.Fault
	start := p.Cycle()
	for i, l := range sites {
		at := start + uint64((i+1)*cycles/(len(sites)+1))
		faults = append(faults, fault.Fault{Kind: fault.LinkDown, Link: l, From: at})
	}
	inj, err := fault.Attach(p, rng.Uint64(), faults...)
	if err != nil {
		t.Fatal(err)
	}

	// The probe hashes every NI output wire after every commit: any
	// divergence anywhere in the network, on any cycle, changes the hash.
	var res soakResult
	outs := p.Mesh.AllNIs
	p.Sim.AddProbe(func(cycle uint64) {
		for _, id := range outs {
			f := p.NI(id).OutputWire().Get()
			if f.Valid {
				res.wireHash = fnvMix(res.wireHash, uint64(f.Data))
				res.wireHash = fnvMix(res.wireHash, cycle)
			}
		}
	})

	mon := core.NewHealthMonitor(p, 256)
	end := start + uint64(cycles)
	for p.Cycle() < end {
		step := uint64(512)
		if rest := end - p.Cycle(); rest < step {
			step = rest
		}
		p.Run(step)
		if len(mon.Stalled()) == 0 {
			continue
		}
		repaired, err := p.RepairStalled(mon, 1_000_000)
		if err != nil {
			t.Fatalf("repair at cycle %d: %v", p.Cycle(), err)
		}
		res.repairs += len(repaired)
	}

	for _, st := range streams {
		res.sent += st.src.Sent()
		res.received += st.sink.Received()
		res.ooo += st.sink.OutOfOrder()
	}
	res.activated = inj.Counters().Total()
	res.endCycle = p.Cycle()
	return res
}

// TestParallelChaosSoakDeterministic is the PR's headline invariant: the
// same seeded chaos soak — traffic, injected link failures, online
// repair — is bit-identical on the sequential kernel and on parallel
// kernels of several widths, down to every flit on every NI wire.
func TestParallelChaosSoakDeterministic(t *testing.T) {
	const seed, cycles = 42, 12000
	ref := runChaosSoak(t, 1, seed, cycles)
	if ref.received == 0 {
		t.Fatal("soak delivered no traffic")
	}
	if ref.activated == 0 {
		t.Fatal("soak activated no faults")
	}
	if ref.repairs == 0 {
		t.Fatal("soak performed no repairs")
	}
	for _, w := range []int{0, 4, runtime.GOMAXPROCS(0)} {
		got := runChaosSoak(t, w, seed, cycles)
		if got != ref {
			t.Errorf("workers=%d diverged from sequential:\n got %+v\nwant %+v", w, got, ref)
		}
	}
}

// TestParallelSpeedup16x16 checks the performance half of the tentpole:
// on a machine with enough cores, the parallel kernel runs the full
// 16x16 torus platform (regioned configuration trees and all) at least
// 2x faster than the sequential kernel. It
// skips on small machines (the determinism tests above still run there);
// BenchmarkBigMesh16x16[Par] report the exact ratio on any machine.
func TestParallelSpeedup16x16(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement in -short mode")
	}
	ncpu := runtime.GOMAXPROCS(0)
	if ncpu < 4 {
		t.Skipf("GOMAXPROCS=%d: need >=4 cores for a meaningful speedup measurement", ncpu)
	}
	const cycles = 3000
	run := func(workers int) float64 {
		bm, err := experiments.BuildBigMesh(16, 16, 8, workers)
		if err != nil {
			t.Fatal(err)
		}
		defer bm.Sim.Shutdown()
		bm.Run(200) // warm-up
		best := math.MaxFloat64
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			bm.Run(cycles)
			if s := time.Since(start).Seconds(); s < best {
				best = s
			}
		}
		return best
	}
	seq := run(1)
	par := run(ncpu)
	speedup := seq / par
	t.Logf("16x16 torus, %d cycles: sequential %.3fs, %d workers %.3fs, speedup %.2fx", cycles, seq, ncpu, par, speedup)
	if speedup < 2 {
		t.Errorf("speedup %.2fx < 2x with %d workers", speedup, ncpu)
	}
}
