package daelite

// The workload-pack determinism soak: both example packs — the DNN
// layer pipeline (multicast weight broadcasts, activation unicasts) and
// the Tiny Tera VOQ matrix — executed under several kernel worker
// counts, cycle-accurately and with model-guided fast-forwarding.
// Everything observable must be byte-identical to the single-worker
// cycle-accurate reference: the run fingerprint, the rendered telemetry
// exports (Prometheus text and NDJSON) and the causal-trace exports
// (Chrome JSON and NDJSON). Each pack's phases end with a settled tail,
// so the fast-forwarded runs genuinely skip — the test fails if they
// never do, because identical exports would then prove nothing about
// the fast-forward path.

import (
	"runtime"
	"strings"
	"testing"

	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/workload"
)

// workloadExports is everything observable a pack run renders.
type workloadExports struct {
	res     *workload.Result
	prom    string
	ndjson  string
	chrome  string
	traceND string
}

func runWorkloadExports(t *testing.T, mkSpec func() *workload.Spec, workers int, ff bool) workloadExports {
	t.Helper()
	wc, err := workload.Compile(mkSpec())
	if err != nil {
		t.Fatal(err)
	}
	p, err := wc.BuildPlatform(workers, ff)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Sim.Shutdown()
	reg := telemetry.NewRegistry()
	p.AttachTelemetry(reg, 8)
	tr := tracing.New(tracing.Options{})
	p.AttachTracer(tr)

	res, err := workload.Run(wc, workload.RunOptions{Platform: p, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("workers=%d ff=%v: pack %s diverged from the model: violations=%d failures=%v",
			workers, ff, res.Pack, res.Violations, res.Failures)
	}

	p.FlushTelemetry()
	out := workloadExports{res: res}
	var prom, nd, chrome, tnd strings.Builder
	if err := telemetry.WritePrometheus(&prom, reg); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteNDJSON(&nd, reg, p.Cycle()); err != nil {
		t.Fatal(err)
	}
	if err := tracing.WriteChrome(&chrome, tr); err != nil {
		t.Fatal(err)
	}
	if err := tracing.WriteNDJSON(&tnd, tr); err != nil {
		t.Fatal(err)
	}
	out.prom, out.ndjson, out.chrome, out.traceND = prom.String(), nd.String(), chrome.String(), tnd.String()
	return out
}

// TestWorkloadExportsByteIdentical runs both example packs under
// workers 1/2/NumCPU crossed with fast-forward off/on and requires every
// export to match the single-worker cycle-accurate reference byte for
// byte. This is the pack-level version of the fast-forward soak's
// contract: an application-shaped run — multicast trees, phase
// teardowns, credit-bounded unicasts — is just as observable-identical
// across execution modes as the random chaos soak.
func TestWorkloadExportsByteIdentical(t *testing.T) {
	packs := []struct {
		name string
		mk   func() *workload.Spec
	}{
		{"dnn", workload.ExampleDNN},
		{"tinytera", func() *workload.Spec { return workload.ExampleTinyTera("hotspot") }},
	}
	for _, pack := range packs {
		pack := pack
		t.Run(pack.name, func(t *testing.T) {
			ref := runWorkloadExports(t, pack.mk, 1, false)
			if ref.res.Skipped != 0 {
				t.Fatalf("cycle-accurate reference skipped %d cycles", ref.res.Skipped)
			}
			// The pack must exercise real set-up and teardown traffic, or
			// identical exports prove nothing.
			for _, want := range []string{
				`daelite_config_spans_total{op="setup"}`,
				`daelite_config_spans_total{op="teardown"}`,
			} {
				if !strings.Contains(ref.prom, want) {
					t.Fatalf("pack export missing %q", want)
				}
			}
			for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				for _, ff := range []bool{false, true} {
					if w == 1 && !ff {
						continue // the reference itself
					}
					got := runWorkloadExports(t, pack.mk, w, ff)
					if ff && got.res.Skipped == 0 {
						t.Errorf("workers=%d ff=true: fast-forward never engaged", w)
					}
					if !ff && got.res.Skipped != 0 {
						t.Errorf("workers=%d ff=false: skipped %d cycles without fast-forward", w, got.res.Skipped)
					}
					if got.res.Fingerprint != ref.res.Fingerprint {
						t.Errorf("workers=%d ff=%v: fingerprint %016x != reference %016x (skipped %d)",
							w, ff, got.res.Fingerprint, ref.res.Fingerprint, got.res.Skipped)
					}
					if got.res.Delivered != ref.res.Delivered {
						t.Errorf("workers=%d ff=%v: delivered %d != reference %d", w, ff, got.res.Delivered, ref.res.Delivered)
					}
					if got.prom != ref.prom {
						t.Errorf("workers=%d ff=%v: Prometheus export diverged (%d vs %d bytes)", w, ff, len(got.prom), len(ref.prom))
					}
					if got.ndjson != ref.ndjson {
						t.Errorf("workers=%d ff=%v: telemetry NDJSON diverged (%d vs %d bytes)", w, ff, len(got.ndjson), len(ref.ndjson))
					}
					if got.chrome != ref.chrome {
						t.Errorf("workers=%d ff=%v: Chrome trace diverged (%d vs %d bytes)", w, ff, len(got.chrome), len(ref.chrome))
					}
					if got.traceND != ref.traceND {
						t.Errorf("workers=%d ff=%v: trace NDJSON diverged (%d vs %d bytes)", w, ff, len(got.traceND), len(ref.traceND))
					}
				}
			}
		})
	}
}
