package daelite

// The telemetry determinism soak: the full observability surface — every
// counter, gauge, histogram, series, span and event an exporter can see —
// must be bit-identical for every kernel worker count. The test renders
// both exporters (Prometheus text and NDJSON) after a seeded chaos soak
// with traffic, link failures, stall detection and online repair, and
// compares the bytes across worker counts. It is the observability
// counterpart of TestParallelChaosSoakDeterministic: not just the
// simulated hardware but everything telemetry reports about it is a pure
// function of the seed.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/sim"
	"daelite/internal/stats"
	"daelite/internal/telemetry"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

// runTelemetrySoak runs the seeded chaos soak with a telemetry registry
// attached and every instrumented layer publishing into it — platform
// harvest, link monitor, fault injector, health events, repair spans —
// and returns the rendered Prometheus and NDJSON exports.
func runTelemetrySoak(t *testing.T, workers int, seed uint64, cycles int) (string, string) {
	t.Helper()
	params := core.DefaultParams()
	params.Workers = workers
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1}, params, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	p.AttachTelemetry(reg, 8)
	stats.NewMonitor(p)
	rng := sim.NewRNG(seed)

	for opened, tries := 0, 0; opened < 5 && tries < 100; tries++ {
		s := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
		d := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
		if s == d {
			continue
		}
		c, err := p.Open(core.ConnectionSpec{Src: s, Dst: d, SlotsFwd: 1 + rng.Intn(2)})
		if err != nil {
			continue
		}
		if err := p.AwaitOpen(c, 1_000_000); err != nil {
			t.Fatal(err)
		}
		traffic.NewSource(p.Sim, fmt.Sprintf("src%d", c.ID), p.NI(s), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.04 + 0.02*float64(rng.Intn(3)), Seed: rng.Uint64()})
		traffic.NewSink(p.Sim, fmt.Sprintf("sink%d", c.ID), p.NI(d), c.DstChannel)
		opened++
	}

	sites := fault.PickLinks(rng, fault.RouterLinks(p), 2)
	var faults []fault.Fault
	start := p.Cycle()
	for i, l := range sites {
		at := start + uint64((i+1)*cycles/(len(sites)+1))
		faults = append(faults, fault.Fault{Kind: fault.LinkDown, Link: l, From: at})
	}
	inj, err := fault.Attach(p, rng.Uint64(), faults...)
	if err != nil {
		t.Fatal(err)
	}
	inj.AttachTelemetry(reg)

	mon := core.NewHealthMonitor(p, 256)
	end := start + uint64(cycles)
	for p.Cycle() < end {
		step := uint64(512)
		if rest := end - p.Cycle(); rest < step {
			step = rest
		}
		p.Run(step)
		if len(mon.Stalled()) == 0 {
			continue
		}
		if _, err := p.RepairStalled(mon, 1_000_000); err != nil {
			t.Fatalf("repair at cycle %d: %v", p.Cycle(), err)
		}
	}

	p.FlushTelemetry()
	var prom, nd strings.Builder
	if err := telemetry.WritePrometheus(&prom, reg); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteNDJSON(&nd, reg, p.Cycle()); err != nil {
		t.Fatal(err)
	}
	return prom.String(), nd.String()
}

// TestTelemetryExportsDeterministic is the PR's headline invariant: the
// rendered exports — every metric, span and event — are byte-identical
// across kernel worker counts.
func TestTelemetryExportsDeterministic(t *testing.T) {
	const seed, cycles = 42, 12000
	promRef, ndRef := runTelemetrySoak(t, 1, seed, cycles)
	// The soak must exercise the whole surface, or identical exports
	// prove nothing.
	for _, want := range []string{
		"daelite_ni_injected_words_total",
		"daelite_router_output_busy_cycles_total",
		"daelite_link_payload_cycles_total",
		"daelite_fault_flits_killed_total",
		`daelite_config_spans_total{op="setup"}`,
		`daelite_config_spans_total{op="repair"}`,
		`daelite_events_total{kind="stall"}`,
		`daelite_events_total{kind="repair"}`,
		`daelite_events_total{kind="fault"}`,
	} {
		if !strings.Contains(promRef, want) {
			t.Fatalf("soak export missing %q", want)
		}
	}
	if !strings.Contains(ndRef, `"record":"span"`) || !strings.Contains(ndRef, `"record":"event"`) {
		t.Fatal("NDJSON export missing spans or events")
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		prom, nd := runTelemetrySoak(t, w, seed, cycles)
		if prom != promRef {
			t.Errorf("workers=%d: Prometheus export diverged from sequential (%d vs %d bytes)", w, len(prom), len(promRef))
		}
		if nd != ndRef {
			t.Errorf("workers=%d: NDJSON export diverged from sequential (%d vs %d bytes)", w, len(nd), len(ndRef))
		}
	}
}

// TestTelemetryOverheadBounded checks the cost contract coarsely: a run
// with the registry attached may not be drastically slower than the same
// run without it. The precise <=5% gate lives in
// BenchmarkPlatformCycle[Telemetry] via daelite-benchdiff; this test only
// catches order-of-magnitude regressions (an accidental per-cycle
// allocation, say), so the threshold is deliberately generous.
func TestTelemetryOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement in -short mode")
	}
	const cycles = 20000
	run := func(attach bool) float64 {
		params := core.DefaultParams()
		params.Workers = 1
		p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1}, params, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			p.AttachTelemetry(telemetry.NewRegistry(), 0)
		}
		c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(3, 3, 0), SlotsFwd: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.AwaitOpen(c, 100000); err != nil {
			t.Fatal(err)
		}
		traffic.NewSource(p.Sim, "src", p.NI(c.Spec.Src), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: 1.0, Seed: 1})
		traffic.NewSink(p.Sim, "sink", p.NI(c.Spec.Dst), c.DstChannel)
		p.Run(500) // warm-up
		best := 1e18
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			p.Run(cycles)
			if s := time.Since(start).Seconds(); s < best {
				best = s
			}
		}
		return best
	}
	off := run(false)
	on := run(true)
	ratio := on / off
	t.Logf("4x4 mesh, %d cycles: telemetry off %.4fs, on %.4fs (%.2fx)", cycles, off, on, ratio)
	if ratio > 2.0 {
		t.Errorf("telemetry overhead %.2fx > 2x — cost contract broken", ratio)
	}
}
