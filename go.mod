module daelite

go 1.22
