// Package daelite is a cycle-accurate implementation of the daelite
// network on chip — "A TDM NoC supporting QoS, multicast, and fast
// connection set-up" (Stefan, Molnos, Ambrose, Goossens; DATE 2012) — as a
// Go library, together with the aelite baseline it is evaluated against,
// the contention-free slot-allocation flow, an analytical area/frequency
// model, and a benchmark harness regenerating every table and figure of
// the paper's evaluation.
//
// The package re-exports the library's primary entry points; the
// underlying packages live in internal/ and are documented individually:
//
//	internal/core       platform assembly and the connection API
//	internal/router     the daelite router (blind TDM switching, 2-cycle hops)
//	internal/ni         the network interface (queues, credits, slot tables)
//	internal/configtree the host configuration modules and per-region broadcast trees
//	internal/cfgproto   the 7-bit configuration wire format and region-select envelopes
//	internal/alloc      contention-free slot allocation (single/multi-path, multicast)
//	internal/aelite     the aelite baseline (source routing, headers, 3-cycle hops)
//	internal/area       the Table II gate-equivalent area model
//	internal/traffic    workload generators and latency probes
//	internal/analysis   analytical QoS bounds
//	internal/telemetry  cycle-domain metrics registry and exporters
//
// Quickstart:
//
//	p, err := daelite.NewMeshPlatform(daelite.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1},
//		daelite.DefaultParams(), 0, 0)
//	conn, err := p.Open(daelite.ConnectionSpec{
//		Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 1, 0), SlotsFwd: 2,
//	})
//	err = p.AwaitOpen(conn, 10_000)
//	p.NI(conn.Spec.Src).Send(conn.SrcChannel, 0xCAFE)
//	p.Run(64)
//	word, ok := p.NI(conn.Spec.Dst).Recv(conn.DstChannel)
package daelite

import (
	"daelite/internal/core"
	"daelite/internal/phit"
	"daelite/internal/topology"
)

// Word is one 32-bit payload word.
type Word = phit.Word

// Params are the platform-wide hardware parameters (slot wheel size, slot
// words, channel counts, queue depths, configuration cool-down).
type Params = core.Params

// Platform is a fully wired daelite SoC simulation.
type Platform = core.Platform

// Connection is a live guaranteed-service connection.
type Connection = core.Connection

// ConnectionSpec describes a requested connection (unicast, multipath or
// multicast).
type ConnectionSpec = core.ConnectionSpec

// MeshSpec parameterizes the mesh topology.
type MeshSpec = topology.MeshSpec

// NodeID identifies a network element.
type NodeID = topology.NodeID

// LinkID identifies a directed link between elements.
type LinkID = topology.LinkID

// Connection lifecycle states.
const (
	Opening = core.Opening
	Open    = core.Open
	Closed  = core.Closed
)

// DefaultParams returns the paper's running-example parameters: 8 slots
// of 2 words, 6-bit credits, a 4-cycle configuration cool-down.
func DefaultParams() Params { return core.DefaultParams() }

// NewMeshPlatform builds a Width x Height mesh platform with the host IP
// (which owns the configuration module) attached at (hostX, hostY).
func NewMeshPlatform(spec MeshSpec, params Params, hostX, hostY int) (*Platform, error) {
	return core.NewMeshPlatform(spec, params, hostX, hostY)
}
