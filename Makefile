GO ?= go

.PHONY: all build test vet fmt race bench benchdiff bench-baseline experiments golden examples cover cover-gate conform workloads fuzz profile admd soak trace clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

test:
	$(GO) test ./...

# What CI runs (.github/workflows/ci.yml).
race:
	$(GO) test -race ./...

# Run every Go benchmark once (liveness), then write a machine-readable
# BENCH_new.json snapshot and gate it against the committed baseline —
# the same sequence as the CI bench job.
bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' ./...
	$(GO) run ./cmd/daelite-bench -json -o BENCH_new.json

benchdiff: bench
	$(GO) run ./cmd/daelite-benchdiff BENCH_baseline.json BENCH_new.json

# Re-measure and commit a new perf baseline (do this when a deliberate
# perf change moves the gated benchmarks).
bench-baseline:
	$(GO) run ./cmd/daelite-bench -json -o BENCH_baseline.json

# Regenerate every table/figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/daelite-bench

# Check the regenerated tables against the committed golden output —
# the same diff as the CI golden job.
golden:
	$(GO) run ./cmd/daelite-bench > /tmp/daelite_experiments.txt
	diff -u experiments_output.txt /tmp/daelite_experiments.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multicast
	$(GO) run ./examples/usecase-switch
	$(GO) run ./examples/multipath
	$(GO) run ./examples/memorymap
	$(GO) run ./examples/videopipeline
	$(GO) run ./examples/faultrepair
	$(GO) run ./examples/telemetry
	$(GO) run ./examples/tracing

cover:
	$(GO) test -cover ./...

# The CI coverage floor: total statement coverage must not drop below
# the figure recorded when the conformance harness landed.
cover-gate:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | awk '/^total:/ {sub("%","",$$3); print "total coverage: " $$3 "%"; if ($$3+0 < 72.6) { print "below the 72.6% floor"; exit 1 }}'

# The CI conformance gate: differential sweep + mutation smoke.
conform:
	$(GO) run ./cmd/daelite-conform -scenarios 25 -seed 1

# The CI workloads gate: both example application packs swept across
# kernel worker counts with fast-forward checked against the
# cycle-accurate reference, each pack's mutation smoke, and the DNN pack
# soaked under per-phase fault injection and repair.
workloads:
	$(GO) run ./cmd/daelite-conform -workload examples/workloads/dnn.json -fastforward
	$(GO) run ./cmd/daelite-conform -workload examples/workloads/tinytera.json -fastforward
	$(GO) run ./cmd/daelite-chaos -workload examples/workloads/dnn.json -chaos-every 2

# Short seeded fuzz run of the allocation verifier — the same budget as
# the CI fuzz step.
fuzz:
	$(GO) test ./internal/alloc -run '^$$' -fuzz FuzzVerify -fuzztime 30s

# Run the admission control-plane daemon on the default 4x4 mesh with
# durable state in ./admd.journal / ./admd.snapshot — restarting picks
# the state back up and reprints the same allocator fingerprint.
admd:
	$(GO) run ./cmd/daelite-admd -journal admd.journal -snapshot admd.snapshot

# The control-plane soak: the in-process race-mode soak (seeded load
# driver + concurrent /metrics scrapes + online conformance checkers +
# restore-fingerprint check), then the full service soak experiment E19
# (HTTP load, quotas, DRR fairness, kill/restart replay) — the same
# pair the CI control-plane job runs.
soak:
	$(GO) test -race -run 'TestSoakWithConcurrentScrape' -v ./internal/admission
	$(GO) run ./cmd/daelite-bench -experiment E19

# Produce a Perfetto-loadable causal trace of a regioned 6x6 run with
# the flight recorder armed, and verify it is byte-identical across
# kernel worker counts — the determinism contract the CI jobs gate.
trace:
	$(GO) run ./cmd/daelite-sim -mesh 6x6 -workers 1 -cycles 2000 -trace-out trace_w1.json -flight-dump flight 0,0-5,5:2 1,0-1,5:1
	$(GO) run ./cmd/daelite-sim -mesh 6x6 -workers 2 -cycles 2000 -trace-out trace.json -flight-dump flight 0,0-5,5:2 1,0-1,5:1
	cmp trace_w1.json trace.json
	@rm -f trace_w1.json
	@echo "wrote trace.json — load it at https://ui.perfetto.dev"

# Profile the admission engine end to end (E17) and drop cpu.pprof /
# mem.pprof for `go tool pprof`.
profile:
	$(GO) run ./cmd/daelite-bench -experiment E17 -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof mem.pprof — inspect with: go tool pprof cpu.pprof"

clean:
	$(GO) clean ./...
