GO ?= go

.PHONY: all build test vet race bench experiments examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# What CI runs (.github/workflows/ci.yml).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/daelite-bench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multicast
	$(GO) run ./examples/usecase-switch
	$(GO) run ./examples/multipath
	$(GO) run ./examples/memorymap
	$(GO) run ./examples/videopipeline
	$(GO) run ./examples/faultrepair

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
