// Tracing: attach the causal tracer to a mesh whose configuration is
// split into three regions, open a multicast tree that crosses all of
// them, and render the resulting span tree — one set-up root fanning out
// into per-region "inject" children (each ending the cycle its region's
// broadcast tree drained) and a "settle" child for the quiet window.
// Finishes by exporting the whole run as Chrome trace-event JSON, the
// format Perfetto and chrome://tracing load directly.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"
	"strings"

	"daelite"
)

func main() {
	// Force MaxRegionElements down so a 6x6 mesh splits into three
	// column-band config regions — the hierarchy a 16x16 needs anyway.
	params := daelite.DefaultParams()
	params.MaxRegionElements = 24
	p, err := daelite.NewMeshPlatform(
		daelite.MeshSpec{Width: 6, Height: 6, NIsPerRouter: 1}, params, 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Attach the tracer before opening anything, like the telemetry
	// registry; a platform without one pays zero tracing cost.
	tr := daelite.NewTracer(daelite.TracerOptions{})
	p.AttachTracer(tr)

	fmt.Printf("mesh 6x6 split into %d config regions\n\n", p.Regions.Num())

	// A multicast tree from the west edge to three far corners crosses
	// every region, so its set-up must inject through all three trees.
	mc, err := p.Open(daelite.ConnectionSpec{
		Src: p.Mesh.NI(0, 2, 0),
		Dsts: []daelite.NodeID{
			p.Mesh.NI(5, 0, 0), p.Mesh.NI(5, 5, 0), p.Mesh.NI(3, 3, 0),
		},
		SlotsFwd: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	// And one short unicast that stays inside the western region, for
	// contrast: its trace has a single inject child.
	uc, err := p.Open(daelite.ConnectionSpec{
		Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(1, 1, 0), SlotsFwd: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.CompleteConfig(1_000_000); err != nil {
		log.Fatal(err)
	}

	// Render each trace as an indented tree. Spans carry cycle-exact
	// start/end stamps, so the fan-out is readable without a UI.
	spans := tr.Spans()
	fmt.Println("causal span trees (cycles):")
	for _, root := range roots(spans) {
		printTree(spans, root, 1)
	}
	fmt.Printf("\nmulticast set-up: %d cycles over %d regions; unicast: %d cycles\n",
		mc.SetupCycles(), mc.Setup.Regions, uc.SetupCycles())

	// The Chrome export is a pure function of the simulation — run it
	// with any -workers value and the bytes are identical.
	var buf bytes.Buffer
	if err := daelite.WriteChromeTrace(&buf, tr); err != nil {
		log.Fatal(err)
	}
	first := buf.String()
	if i := strings.IndexByte(first[1:], '\n'); i >= 0 {
		first = first[:i+1]
	}
	fmt.Printf("\nChrome trace export: %d bytes, first line %q...\n", buf.Len(), first)
	fmt.Println("(write it to a file with daelite-sim -trace-out and load it in Perfetto)")
}

// roots returns the parentless spans in start order.
func roots(spans []daelite.TraceSpan) []daelite.TraceSpan {
	var out []daelite.TraceSpan
	for _, s := range spans {
		if s.Parent == 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

func printTree(spans []daelite.TraceSpan, s daelite.TraceSpan, depth int) {
	fmt.Printf("%s%-12s [%4d, %4d] %d cycles\n",
		strings.Repeat("  ", depth), s.Name, s.Start, s.End, s.Cycles())
	var kids []daelite.TraceSpan
	for _, c := range spans {
		if c.Parent == s.ID && c.Trace == s.Trace {
			kids = append(kids, c)
		}
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i].ID < kids[j].ID })
	for _, c := range kids {
		printTree(spans, c, depth+1)
	}
}
