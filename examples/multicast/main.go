// Multicast: a coherence-directory-style scenario from the paper's
// introduction — one node broadcasts invalidation messages to several
// sharers over a single multicast tree. The tree reserves the source NI
// link once (Fig. 7); all destination shells receive the identical stream.
// End-to-end flow control is disabled on multicast channels, so every
// destination consumes at the delivery rate.
package main

import (
	"fmt"
	"log"

	"daelite"
)

func main() {
	p, err := daelite.NewMeshPlatform(
		daelite.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1},
		daelite.DefaultParams(), 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	// The "directory" sits at (1,1); the sharers are three corner
	// tiles.
	directory := p.Mesh.NI(1, 1, 0)
	sharers := []daelite.NodeID{
		p.Mesh.NI(0, 0, 0),
		p.Mesh.NI(2, 0, 0),
		p.Mesh.NI(2, 2, 0),
	}

	conn, err := p.Open(daelite.ConnectionSpec{
		Src:      directory,
		Dsts:     sharers,
		SlotsFwd: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.AwaitOpen(conn, 20_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multicast tree to %d sharers configured in %d cycles\n",
		len(sharers), conn.SetupCycles())

	// Broadcast a stream of invalidation messages (address words) and
	// drain every sharer as they arrive — multicast destinations must
	// keep up with the line rate.
	src := p.NI(directory)
	received := make(map[daelite.NodeID][]daelite.Word)
	const invalidations = 24
	sent := 0
	for sent < invalidations || pending(p, conn, received, invalidations) {
		if sent < invalidations && src.Send(conn.SrcChannel, daelite.Word(0x8000_0000+sent*64)) {
			sent++
		}
		p.Run(8)
		for _, s := range sharers {
			ni := p.NI(s)
			ch := conn.DstChannels[s]
			for {
				d, ok := ni.Recv(ch)
				if !ok {
					break
				}
				received[s] = append(received[s], d.Word)
			}
		}
	}

	for _, s := range sharers {
		got := received[s]
		fmt.Printf("sharer %s received %d invalidations, first %#x last %#x\n",
			p.Mesh.Node(s).Name, len(got), uint32(got[0]), uint32(got[len(got)-1]))
		for i, w := range got {
			if w != daelite.Word(0x8000_0000+i*64) {
				log.Fatalf("sharer %s: stream corrupt at %d", p.Mesh.Node(s).Name, i)
			}
		}
	}
	fmt.Println("all sharers received the identical invalidation stream")

	// A new sharer joins: the tree is grown with a partial-path packet
	// while the broadcast keeps running (the Fig. 7 mechanism).
	newcomer := p.Mesh.NI(0, 2, 0)
	if err := p.AddMulticastDestination(conn, newcomer); err != nil {
		log.Fatal(err)
	}
	if _, err := p.CompleteConfig(20_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sharer %s joined the live tree\n", p.Mesh.Node(newcomer).Name)
	const extra = 8
	sent2 := 0
	for sent2 < extra {
		if src.Send(conn.SrcChannel, daelite.Word(0x9000_0000+sent2)) {
			sent2++
		}
		p.Run(8)
		for _, s := range append(sharers, newcomer) {
			ni := p.NI(s)
			ch := conn.DstChannels[s]
			for {
				d, ok := ni.Recv(ch)
				if !ok {
					break
				}
				received[s] = append(received[s], d.Word)
			}
		}
	}
	p.Run(200)
	for {
		d, ok := p.NI(newcomer).Recv(conn.DstChannels[newcomer])
		if !ok {
			break
		}
		received[newcomer] = append(received[newcomer], d.Word)
	}
	if n := len(received[newcomer]); n < extra {
		log.Fatalf("newcomer received %d of %d", n, extra)
	}
	fmt.Printf("newcomer received %d invalidations after joining\n", len(received[newcomer]))
}

func pending(p *daelite.Platform, conn *daelite.Connection, received map[daelite.NodeID][]daelite.Word, want int) bool {
	for _, s := range conn.Spec.Dsts {
		if len(received[s]) < want {
			return true
		}
	}
	return false
}
