// Memory-mapped platform: the full Fig. 3 stack — an IP issues bus
// transactions on its local bus; the bus demultiplexes them by address
// onto network connections; shells serialize them into messages; a remote
// target shell applies them to a memory and returns read data. The bus
// address map itself is configured over the NoC through the NI shell's
// RegBus interface, exactly as the paper describes for "the buses adjacent
// to the network".
package main

import (
	"fmt"
	"log"

	"daelite"
	"daelite/internal/bus"
	"daelite/internal/cfgproto"
)

func main() {
	p, err := daelite.NewMeshPlatform(
		daelite.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1},
		daelite.DefaultParams(), 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	cpu := p.Mesh.NI(0, 0, 0)
	mem := p.Mesh.NI(1, 1, 0)

	conn, err := p.Open(daelite.ConnectionSpec{Src: cpu, Dst: mem, SlotsFwd: 2, SlotsRev: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.AwaitOpen(conn, 10_000); err != nil {
		log.Fatal(err)
	}

	// The initiator bus in front of the CPU NI; its address map is
	// configured through the configuration tree (RegBus writes are
	// deserialized by the NI shell into wide words).
	amap := bus.NewAddressMap()
	p.NI(cpu).SetBusConfigPort(amap)
	cfgWord := bus.MapConfigWord(0x4000_0000, conn.SrcChannel)
	var writes []cfgproto.RegWrite
	for i := 0; i < 4; i++ {
		shift := uint(7 * (3 - i))
		writes = append(writes, cfgproto.RegWrite{
			Element: int(cpu),
			Reg:     cfgproto.RegSelect(cfgproto.RegBus, i),
			Value:   uint8(cfgWord >> shift & 0x7F),
		})
	}
	pkt, err := cfgproto.WriteRegPacket(writes)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Host.SubmitPacket(pkt); err != nil {
		log.Fatal(err)
	}
	if _, err := p.CompleteConfig(10_000); err != nil {
		log.Fatal(err)
	}
	if ch, ok := amap.Lookup(0x4000_0040); !ok || ch != conn.SrcChannel {
		log.Fatal("bus address map not configured over the NoC")
	}
	fmt.Printf("bus address map configured over the NoC: page 0x40000xxx -> channel %d\n", conn.SrcChannel)

	initiator := bus.NewInitiator(p.Sim, "cpu-bus", p.NI(cpu), amap)
	memory := bus.NewMemory()
	target := bus.NewTargetShell(p.Sim, "mem-shell", p.NI(mem), memory)
	target.WatchChannel(conn.DstChannel)

	// CPU writes a cache line, then reads it back through the NoC.
	line := []daelite.Word{0x11, 0x22, 0x33, 0x44}
	if err := initiator.Issue(bus.Transaction{Kind: bus.Write, Addr: 0x4000_0040, Data: line}); err != nil {
		log.Fatal(err)
	}
	p.Run(400)
	w, r := target.Stats()
	fmt.Printf("target shell applied %d writes, served %d reads\n", w, r)
	if memory.ReadWord(0x4000_0048) != 0x33 {
		log.Fatal("remote memory write failed")
	}

	if err := initiator.Issue(bus.Transaction{Kind: bus.Read, Addr: 0x4000_0040, Data: make([]daelite.Word, 4)}); err != nil {
		log.Fatal(err)
	}
	p.Run(600)
	res, ok := initiator.PopResult()
	if !ok {
		log.Fatal("read result missing")
	}
	fmt.Printf("read back over the NoC: %#x %#x %#x %#x\n",
		uint32(res.Data[0]), uint32(res.Data[1]), uint32(res.Data[2]), uint32(res.Data[3]))
	for i := range line {
		if res.Data[i] != line[i] {
			log.Fatalf("read-back mismatch at %d", i)
		}
	}
	fmt.Println("memory-mapped round trip verified")
}
