// Video pipeline: the SoC workload the paper's introduction motivates —
// a high-throughput video stream (camera -> scaler -> encoder) sharing the
// network with low-latency cache-miss traffic, each with its own hard
// guarantee. The platform is described declaratively (internal/spec), the
// streams run concurrently, and the measured latencies are checked
// against each connection's analytical worst-case bound.
package main

import (
	"fmt"
	"log"
	"strings"

	"daelite/internal/analysis"
	"daelite/internal/spec"
	"daelite/internal/traffic"
)

const platformJSON = `{
  "mesh": {"width": 4, "height": 4},
  "params": {"wheel": 16},
  "host": {"x": 0, "y": 0},
  "connections": [
    {"name": "camera-scaler",  "src": {"x": 3, "y": 0}, "dst": {"x": 1, "y": 1}, "slotsFwd": 6, "rate": 0.30},
    {"name": "scaler-encoder", "src": {"x": 1, "y": 1}, "dst": {"x": 2, "y": 3}, "slotsFwd": 6, "rate": 0.30},
    {"name": "cpu-mem",        "src": {"x": 0, "y": 3}, "dst": {"x": 3, "y": 3}, "slotsFwd": 2, "rate": 0.05},
    {"name": "dsp-mem",        "src": {"x": 0, "y": 1}, "dst": {"x": 3, "y": 3}, "slotsFwd": 1, "rate": 0.02}
  ]
}`

func main() {
	s, err := spec.Parse(strings.NewReader(platformJSON))
	if err != nil {
		log.Fatal(err)
	}
	inst, err := s.Build()
	if err != nil {
		log.Fatal(err)
	}
	p := inst.Platform
	fmt.Printf("platform built: %d connections configured by cycle %d\n",
		len(inst.Connections), p.Cycle())

	type stream struct {
		name  string
		sink  *traffic.Sink
		bound int
	}
	var streams []stream
	for i, cs := range s.Connections {
		c := inst.Connections[i]
		pa := c.Fwd.Paths[0]
		bound := analysis.WorstCaseLatency(pa.InjectSlots, 2, len(pa.Path))
		bw := analysis.GuaranteedBandwidth(pa.InjectSlots)
		fmt.Printf("%-15s %d slots -> guaranteed %.3f words/cycle, worst-case latency %d cycles\n",
			cs.Name, cs.SlotsFwd, bw, bound)
		traffic.NewSource(p.Sim, cs.Name+"-src", p.NI(c.Spec.Src), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: cs.Rate, Seed: uint64(i + 1)})
		sink := traffic.NewSink(p.Sim, cs.Name+"-sink", p.NI(c.Spec.Dst), c.DstChannel)
		streams = append(streams, stream{name: cs.Name, sink: sink, bound: bound})
	}

	p.Run(30_000)

	fmt.Println("\nafter 30k cycles of concurrent operation:")
	ok := true
	for _, st := range streams {
		tot := st.sink.TotalStats()
		fmt.Printf("%-15s delivered %6d words, end-to-end latency mean %.1f / worst %d (bound %d)\n",
			st.name, st.sink.Received(), tot.Mean(), tot.MaxLat, st.bound)
		if tot.MaxLat > uint64(st.bound)+2 {
			ok = false
		}
	}
	if !ok {
		log.Fatal("a guarantee was violated")
	}
	fmt.Println("every stream stayed within its analytical guarantee — QoS holds under full concurrency")
}
