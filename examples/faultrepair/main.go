// Fault injection and online repair: a link dies under a running stream;
// the health monitor detects the stall, diagnosis localizes the dead link,
// and the platform re-establishes the connection around it through the
// fast configuration tree — while an unrelated stream never loses a word.
// The run is seeded and replays bit-identically.
package main

import (
	"fmt"
	"log"

	"daelite"
)

func main() {
	p, err := daelite.NewMeshPlatform(
		daelite.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1},
		daelite.DefaultParams(), 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	// The victim crosses row 0 end to end; the bystander runs two rows
	// away and must stay untouched by everything that follows.
	victim, err := p.Open(daelite.ConnectionSpec{
		Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(3, 0, 0), SlotsFwd: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	bystander, err := p.Open(daelite.ConnectionSpec{
		Src: p.Mesh.NI(0, 2, 0), Dst: p.Mesh.NI(3, 2, 0), SlotsFwd: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.AwaitOpen(victim, 10_000); err != nil {
		log.Fatal(err)
	}
	if err := p.AwaitOpen(bystander, 10_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim open after %d cycles, path %v\n", victim.SetupCycles(), victim.Fwd.Paths[0].Path)

	// Schedule the fault: the router link R20 -> R30 — the victim's last
	// router hop — dies 500 cycles from now. Everything the injector does
	// is a pure function of its seed.
	var dead daelite.LinkID = -1
	for _, l := range p.Mesh.Links() {
		if l.From == p.Mesh.Router(2, 0) && l.To == p.Mesh.Router(3, 0) {
			dead = l.ID
		}
	}
	failAt := p.Cycle() + 500
	inj, err := daelite.InjectFaults(p, 42, daelite.Fault{
		Kind: daelite.LinkDown, Link: dead, From: failAt,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled: %s\n", inj.Faults()[0])

	// Continuous traffic on both connections, and a health monitor
	// polling end-to-end progress (a software daemon would do this through
	// the configuration tree's register reads).
	daelite.NewSource(p, "victim-src", victim.Spec.Src, victim.SrcChannel,
		daelite.SourceConfig{Pattern: daelite.CBR, Rate: 0.2, Seed: 1})
	vSink := daelite.NewSink(p, "victim-sink", victim.Spec.Dst, victim.DstChannel)
	const bystanderWords = 600
	bSrc := daelite.NewSource(p, "bystander-src", bystander.Spec.Src, bystander.SrcChannel,
		daelite.SourceConfig{Pattern: daelite.CBR, Rate: 0.1, Seed: 2, Limit: bystanderWords})
	bSink := daelite.NewSink(p, "bystander-sink", bystander.Spec.Dst, bystander.DstChannel)
	mon := daelite.NewHealthMonitor(p, 128)

	// Run until the monitor latches the stall.
	if _, ok := p.Sim.RunUntil(func() bool { return len(mon.Stalled()) > 0 }, 20_000); !ok {
		log.Fatal("stall never detected")
	}
	detect := mon.DetectCycle(victim.ID)
	fmt.Printf("link died at cycle %d; stall detected at cycle %d (%d flits killed so far)\n",
		failAt, detect, inj.Counters().FlitsKilled)

	// Diagnosis: the suspects are the stalled connection's router links
	// minus every link a healthy connection recently used.
	fmt.Print("suspect links:")
	for _, l := range mon.SuspectLinks() {
		lk := p.Mesh.Link(l)
		fmt.Printf(" %s->%s", p.Mesh.Node(lk.From).Name, p.Mesh.Node(lk.To).Name)
	}
	fmt.Println()

	// Repair: exclude the suspects, tear the victim down and re-open it
	// on the same NI channels over a detour — two transactions through
	// the configuration tree.
	results, err := p.RepairStalled(mon, 20_000)
	if err != nil {
		log.Fatal(err)
	}
	res := results[0]
	fmt.Printf("repaired in %d cycles (detect-to-done %d), new path %v\n",
		res.RepairCycles(), res.DetectToDoneCycles(), res.Conn.Fwd.Paths[0].Path)

	// The source and sink never changed: words queued during the outage
	// now flow over the detour, still in order.
	before := vSink.Received()
	p.Run(3000)
	fmt.Printf("victim delivered %d more words after repair, %d out of order\n",
		vSink.Received()-before, vSink.OutOfOrder())

	// The bystander finishes its workload having lost nothing.
	if _, ok := p.Sim.RunUntil(func() bool { return bSink.Received() >= bystanderWords }, 20_000); !ok {
		log.Fatal("bystander starved")
	}
	fmt.Printf("bystander: sent %d, delivered %d, lost %d, out of order %d\n",
		bSrc.Sent(), bSink.Received(), bSrc.Sent()-bSink.Received(), bSink.OutOfOrder())
}
