// Telemetry: run a 4x4 mesh with four saturated guaranteed-service
// connections and a telemetry registry attached, then prove the QoS
// contract from the exported metrics alone — each connection's attained
// bandwidth, measured at the sinks over a long window, must equal its
// slot reservation. Finishes by printing the configuration spans and a
// Prometheus excerpt of the registry the run produced.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"daelite"
)

func main() {
	params := daelite.DefaultParams()
	params.SendQueueDepth = 64 // keep saturating sources from stalling
	p, err := daelite.NewMeshPlatform(
		daelite.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1}, params, 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Attach the registry before opening anything so the set-up spans of
	// every connection are captured.
	reg := daelite.NewTelemetryRegistry()
	p.AttachTelemetry(reg, 0)

	// Four connections with different reservations out of the 8-slot
	// wheel; rows don't overlap, but the guarantee would hold either way.
	reqs := []struct {
		row, slots int
	}{{0, 4}, {1, 2}, {2, 1}, {3, 1}}
	var conns []*daelite.Connection
	for _, q := range reqs {
		c, err := p.Open(daelite.ConnectionSpec{
			Src: p.Mesh.NI(0, q.row, 0), Dst: p.Mesh.NI(3, q.row, 0), SlotsFwd: q.slots,
		})
		if err != nil {
			log.Fatal(err)
		}
		conns = append(conns, c)
	}
	if _, err := p.CompleteConfig(1_000_000); err != nil {
		log.Fatal(err)
	}

	// Saturate every connection at once: rate 1.0 keeps the send queues
	// full, so each stream gets exactly what its TDM slots guarantee.
	var sinks []*daelite.Sink
	for i, c := range conns {
		daelite.NewSource(p, fmt.Sprintf("src%d", i), c.Spec.Src, c.SrcChannel,
			daelite.SourceConfig{Pattern: daelite.CBR, Rate: 1.0, Seed: uint64(i + 1)})
		sinks = append(sinks, daelite.NewSink(p, fmt.Sprintf("sink%d", i), c.Spec.Dst, c.DstChannel))
	}
	p.Run(2048) // warm-up
	before := make([]uint64, len(sinks))
	for i, s := range sinks {
		before[i] = s.Received()
	}
	const window = 16384
	p.Run(window)

	fmt.Println("attained vs reserved bandwidth (words/cycle):")
	for i, c := range conns {
		reserved := daelite.GuaranteesOf(p, c).Bandwidth
		attained := float64(sinks[i].Received()-before[i]) / window
		fmt.Printf("  conn %d (%d slots): attained %.4f, reserved %.4f\n",
			i, reqs[i].slots, attained, reserved)
		if math.Abs(attained-reserved)/reserved > 0.02 {
			log.Fatalf("conn %d attained %.4f != reserved %.4f", i, attained, reserved)
		}
	}
	fmt.Println("every connection attains exactly its reservation: TDM slots are exclusive")

	// The same story from the registry: spans for every set-up, and the
	// harvested counters behind the numbers above.
	p.FlushTelemetry()
	fmt.Println("\nconfiguration spans:")
	for _, s := range reg.Spans() {
		fmt.Printf("  %s %s: submitted @%d, settled @%d (%d cycles, %d words)\n",
			s.Op, s.Detail, s.SubmitCycle, s.SettleCycle, s.Cycles(), s.Words)
	}
	var b strings.Builder
	if err := daelite.WritePrometheus(&b, reg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPrometheus snapshot: %d metrics; excerpt:\n", reg.NumMetrics())
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "daelite_cycle") ||
			strings.HasPrefix(line, "daelite_config_span") ||
			strings.Contains(line, `{ni="NI03"`) {
			fmt.Println("  " + line)
		}
	}
}
