// Quickstart: build a 2x2 daelite platform, open one guaranteed-service
// connection through the real configuration tree, send a few words and
// receive them — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"daelite"
)

func main() {
	// A 2x2 mesh with one NI per router; the host IP (which owns the
	// configuration module) sits at (0,0).
	p, err := daelite.NewMeshPlatform(
		daelite.MeshSpec{Width: 2, Height: 2, NIsPerRouter: 1},
		daelite.DefaultParams(), 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Reserve 2 of 8 TDM slots from NI(0,0) to NI(1,1): a hard
	// guarantee of 1/4 of a link's bandwidth with bounded latency.
	conn, err := p.Open(daelite.ConnectionSpec{
		Src:      p.Mesh.NI(0, 0, 0),
		Dst:      p.Mesh.NI(1, 1, 0),
		SlotsFwd: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Run the platform until the set-up packets have traversed the
	// broadcast configuration tree and the cool-down has elapsed.
	if err := p.AwaitOpen(conn, 10_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connection open after %d cycles (%d configuration words)\n",
		conn.SetupCycles(), conn.Setup.Words)

	// Send a burst and collect it at the destination.
	src := p.NI(conn.Spec.Src)
	dst := p.NI(conn.Spec.Dst)
	for i := 0; i < 8; i++ {
		if !src.Send(conn.SrcChannel, daelite.Word(0xCAFE0000+i)) {
			log.Fatalf("send %d rejected", i)
		}
	}
	p.Run(200)

	for i := 0; i < 8; i++ {
		d, ok := dst.Recv(conn.DstChannel)
		if !ok {
			log.Fatalf("word %d missing", i)
		}
		fmt.Printf("word %d: %#x (network latency %d cycles)\n",
			i, uint32(d.Word), d.Cycle-d.Tag.InjectCycle)
	}

	// Tear the connection down; its slots are immediately reusable.
	if err := p.Close(conn); err != nil {
		log.Fatal(err)
	}
	fmt.Println("connection closed")
}
