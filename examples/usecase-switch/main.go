// Use-case switching: the paper's usage scenario (Section IV). A platform
// runs a "video playback" use-case (camera -> decoder -> display streams);
// switching to a "video call" use-case tears those connections down and
// sets up different ones — dynamically, while an unrelated control stream
// keeps running undisturbed. The whole switch takes tens to hundreds of
// cycles thanks to the dedicated configuration tree.
package main

import (
	"fmt"
	"log"

	"daelite"
	"daelite/internal/traffic"
)

func main() {
	params := daelite.DefaultParams()
	params.Wheel = 16
	p, err := daelite.NewMeshPlatform(
		daelite.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1}, params, 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	// A persistent low-rate control stream that must survive all
	// reconfiguration.
	control, err := p.Open(daelite.ConnectionSpec{
		Src: p.Mesh.NI(0, 1, 0), Dst: p.Mesh.NI(2, 1, 0), SlotsFwd: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.AwaitOpen(control, 100_000); err != nil {
		log.Fatal(err)
	}
	ctlSrc := traffic.NewSource(p.Sim, "ctl-src", p.NI(control.Spec.Src), control.SrcChannel,
		traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.02, Seed: 1})
	ctlSink := traffic.NewSink(p.Sim, "ctl-sink", p.NI(control.Spec.Dst), control.DstChannel)
	_ = ctlSrc

	openUseCase := func(name string, streams [][4]int, slots int) []*daelite.Connection {
		var conns []*daelite.Connection
		start := p.Cycle()
		for _, s := range streams {
			c, err := p.Open(daelite.ConnectionSpec{
				Src: p.Mesh.NI(s[0], s[1], 0), Dst: p.Mesh.NI(s[2], s[3], 0), SlotsFwd: slots,
			})
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			conns = append(conns, c)
		}
		if err := p.AwaitOpen(conns[len(conns)-1], 100_000); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("use-case %q: %d connections configured in %d cycles\n",
			name, len(conns), p.Cycle()-start)
		return conns
	}
	closeUseCase := func(name string, conns []*daelite.Connection) {
		start := p.Cycle()
		for _, c := range conns {
			if err := p.Close(c); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := p.CompleteConfig(100_000); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("use-case %q: torn down in %d cycles\n", name, p.Cycle()-start)
	}

	// Phase 1: video playback (camera at (0,0) -> decoder at (1,2) ->
	// display at (2,0)).
	playback := openUseCase("video playback", [][4]int{
		{0, 0, 1, 2}, // camera -> decoder
		{1, 2, 2, 0}, // decoder -> display
	}, 4)
	p.Run(3000)
	before := ctlSink.Received()

	// The switch.
	switchStart := p.Cycle()
	closeUseCase("video playback", playback)
	call := openUseCase("video call", [][4]int{
		{0, 0, 2, 2}, // camera -> encoder
		{2, 2, 0, 2}, // encoder -> radio
		{0, 2, 2, 0}, // radio -> display (far end video)
	}, 2)
	fmt.Printf("complete use-case switch: %d cycles\n", p.Cycle()-switchStart)

	p.Run(3000)
	after := ctlSink.Received()
	if after <= before || ctlSink.OutOfOrder() > 0 {
		log.Fatalf("control stream disturbed by the switch (%d -> %d, ooo %d)",
			before, after, ctlSink.OutOfOrder())
	}
	fmt.Printf("control stream undisturbed: %d words before switch, %d after, 0 lost\n", before, after)

	// Prove the call use-case carries data.
	c := call[0]
	p.NI(c.Spec.Src).Send(c.SrcChannel, 0xCA11)
	p.Run(64)
	if d, ok := p.NI(c.Spec.Dst).Recv(c.DstChannel); !ok || d.Word != 0xCA11 {
		log.Fatal("video-call connection not functional")
	}
	fmt.Println("video-call connections verified")
}
