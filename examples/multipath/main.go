// Multipath: route one connection over several paths at no additional
// hardware cost (Section V cites 24% average bandwidth gains from [29]).
// The example runs the same bisection-heavy workload on two identical 4x4
// platforms — one restricted to single paths, one allowed to split — and
// compares how much of the workload each admits; it then streams over a
// genuinely split connection and shows the deterministic TDM interleaving
// across its paths.
package main

import (
	"fmt"
	"log"

	"daelite"
)

// A bisection-heavy workload (sx, sy, dx, dy, slots): sources on the left
// half, destinations on the right, variable bandwidth demands.
var requests = [][5]int{
	{1, 2, 3, 2, 8}, {1, 2, 2, 0, 6}, {1, 0, 3, 2, 5}, {1, 2, 2, 3, 5},
	{0, 0, 3, 3, 6}, {1, 0, 2, 1, 7}, {0, 0, 3, 0, 8}, {1, 0, 2, 1, 5},
	{0, 1, 2, 0, 7}, {1, 3, 2, 3, 7}, {0, 2, 2, 3, 8}, {1, 1, 2, 1, 6},
	{1, 3, 3, 0, 5}, {1, 1, 3, 1, 6}, {0, 0, 3, 1, 6}, {1, 2, 3, 2, 7},
	{0, 0, 2, 1, 7}, {1, 0, 3, 2, 8}, {1, 3, 2, 3, 8}, {1, 1, 2, 1, 5},
	{1, 3, 3, 2, 7}, {0, 2, 2, 1, 5}, {1, 1, 3, 3, 5}, {0, 2, 2, 0, 8},
}

func buildPlatform() *daelite.Platform {
	params := daelite.DefaultParams()
	params.Wheel = 16
	p, err := daelite.NewMeshPlatform(
		daelite.MeshSpec{Width: 4, Height: 4, NIsPerRouter: 1}, params, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func admitAll(p *daelite.Platform, multipath bool) (admittedSlots int, conns []*daelite.Connection) {
	for _, q := range requests {
		spec := daelite.ConnectionSpec{
			Src: p.Mesh.NI(q[0], q[1], 0), Dst: p.Mesh.NI(q[2], q[3], 0),
			SlotsFwd: q[4], Multipath: multipath, MaxDetour: 2,
		}
		if !multipath {
			spec.MaxDetour = 0
		}
		c, err := p.Open(spec)
		if err != nil {
			continue
		}
		if err := p.AwaitOpen(c, 1_000_000); err != nil {
			log.Fatal(err)
		}
		admittedSlots += q[4]
		conns = append(conns, c)
	}
	return admittedSlots, conns
}

func main() {
	single, _ := admitAll(buildPlatform(), false)
	pm := buildPlatform()
	multi, conns := admitAll(pm, true)
	fmt.Printf("workload: %d requests crossing the bisection\n", len(requests))
	fmt.Printf("single-path flow admitted:  %d slots of bandwidth\n", single)
	fmt.Printf("multipath flow admitted:    %d slots of bandwidth (+%.0f%%)\n",
		multi, 100*float64(multi-single)/float64(single))
	if multi <= single {
		log.Fatal("multipath did not admit more of the workload")
	}

	// Pick a connection that was genuinely split and stream over it.
	var conn *daelite.Connection
	for _, c := range conns {
		if len(c.Fwd.Paths) >= 2 {
			conn = c
			break
		}
	}
	if conn == nil {
		log.Fatal("no split connection found")
	}
	fmt.Printf("\nstreaming over %s->%s, split over %d paths:\n",
		pm.Mesh.Node(conn.Spec.Src).Name, pm.Mesh.Node(conn.Spec.Dst).Name, len(conn.Fwd.Paths))
	for i, pa := range conn.Fwd.Paths {
		var names []string
		for _, n := range pm.Mesh.PathNodes(pa.Path) {
			names = append(names, pm.Mesh.Node(n).Name)
		}
		fmt.Printf("  path %d (slots %v): %v\n", i, pa.InjectSlots.Slots(), names)
	}

	// Words may arrive reordered across paths (the TDM schedule makes
	// the interleaving deterministic); sequence tags let the
	// destination reassemble.
	srcNI, dstNI := pm.NI(conn.Spec.Src), pm.NI(conn.Spec.Dst)
	const words = 48
	sent, received, ooo := 0, 0, 0
	got := make([]bool, words)
	lastSeq := int64(-1)
	for received < words {
		if sent < words && srcNI.Send(conn.SrcChannel, daelite.Word(sent)) {
			sent++
		}
		pm.Run(2)
		for {
			d, ok := dstNI.Recv(conn.DstChannel)
			if !ok {
				break
			}
			if got[d.Word] {
				log.Fatalf("duplicate word %d", d.Word)
			}
			got[d.Word] = true
			received++
			if int64(d.Tag.Seq) < lastSeq {
				ooo++
			}
			lastSeq = int64(d.Tag.Seq)
		}
	}
	fmt.Printf("all %d words delivered exactly once; %d arrivals out of injection order (deterministic TDM interleaving)\n",
		words, ooo)
}
