package daelite_test

import (
	"strings"
	"testing"

	"daelite"
)

// TestToolkitFacade exercises the full public surface end to end: build,
// dimension, open, generate traffic, check guarantees, monitor links.
func TestToolkitFacade(t *testing.T) {
	p, err := daelite.NewMeshPlatform(
		daelite.MeshSpec{Width: 3, Height: 3, NIsPerRouter: 1},
		daelite.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Dimension a requirement set on the same topology shape.
	res, err := daelite.Dimension(p.Mesh, []daelite.Requirement{
		{Name: "a", Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(2, 2, 0), Bandwidth: 0.25, MaxLatency: 40},
	}, daelite.DimensionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wheel != 8 {
		t.Fatalf("dimensioned wheel = %d", res.Wheel)
	}

	mon := daelite.NewLinkMonitor(p)
	rec := daelite.NewWaveRecorder(p)
	_ = rec

	conn, err := p.Open(daelite.ConnectionSpec{
		Src: p.Mesh.NI(0, 0, 0), Dst: p.Mesh.NI(2, 2, 0),
		SlotsFwd: res.Assignments[0].Slots, Spread: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitOpen(conn, 100_000); err != nil {
		t.Fatal(err)
	}
	g := daelite.GuaranteesOf(p, conn)
	if g.Bandwidth < 0.25 || g.WorstCaseLatency <= 0 {
		t.Fatalf("guarantees: %+v", g)
	}
	if g.Server.Rho != g.Bandwidth {
		t.Fatal("LR server inconsistent")
	}

	src := daelite.NewSource(p, "src", conn.Spec.Src, conn.SrcChannel,
		daelite.SourceConfig{Pattern: daelite.CBR, Rate: 0.1, Limit: 100, Seed: 1})
	sink := daelite.NewSink(p, "sink", conn.Spec.Dst, conn.DstChannel)
	p.Sim.RunUntil(func() bool { return sink.Received() >= 100 }, 1_000_000)
	if sink.Received() != 100 {
		t.Fatalf("received %d (src sent %d)", sink.Received(), src.Sent())
	}
	if sink.TotalStats().MaxLat > uint64(g.WorstCaseLatency)+2 {
		t.Fatalf("guarantee violated: %d > %d", sink.TotalStats().MaxLat, g.WorstCaseLatency)
	}
	if mon.TotalPayloadCycles() == 0 {
		t.Fatal("monitor saw nothing")
	}

	// Spec parsing through the facade.
	sp, err := daelite.ParseSpec(strings.NewReader(`{
	  "mesh": {"width": 2, "height": 2}, "host": {"x": 0, "y": 0},
	  "connections": [{"src": {"x":0,"y":0}, "dst": {"x":1,"y":1}, "slotsFwd": 1}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Connections) != 1 {
		t.Fatal("spec facade broken")
	}
}
