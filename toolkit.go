package daelite

// This file re-exports the design-flow and measurement tooling so that
// code importing only the top-level package reaches the full library:
// traffic generation, analytical guarantees, dimensioning, declarative
// platform specs, link monitoring and waveform tracing. The underlying
// implementations live in internal/ packages (see README for the map).

import (
	"io"

	"daelite/internal/alloc"
	"daelite/internal/analysis"
	"daelite/internal/core"
	"daelite/internal/dimension"
	"daelite/internal/fault"
	"daelite/internal/ni"
	"daelite/internal/spec"
	"daelite/internal/stats"
	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/topology"
	"daelite/internal/trace"
	"daelite/internal/traffic"
)

// --- Traffic generation and measurement ---

// Source injects synthetic traffic into an NI channel.
type Source = traffic.Source

// SourceConfig parameterizes a Source (pattern, rate, limit, seed).
type SourceConfig = traffic.SourceConfig

// Sink drains an NI channel and records latency statistics.
type Sink = traffic.Sink

// Traffic patterns.
const (
	// CBR injects at a constant rate.
	CBR = traffic.CBR
	// Bursty alternates idle gaps with back-to-back bursts.
	Bursty = traffic.Bursty
)

// NewSource attaches a traffic source to a connection's source channel.
func NewSource(p *Platform, name string, niID NodeID, channel int, cfg SourceConfig) *Source {
	return traffic.NewSource(p.Sim, name, p.NI(niID), channel, cfg)
}

// NewSink attaches a measuring sink to a connection's destination channel.
func NewSink(p *Platform, name string, niID NodeID, channel int) *Sink {
	return traffic.NewSink(p.Sim, name, p.NI(niID), channel)
}

// Delivery is one word handed to the IP side, with provenance for latency
// measurement.
type Delivery = ni.Delivery

// --- Analytical guarantees ---

// LRServer is the latency-rate abstraction of a connection for
// system-level real-time analysis.
type LRServer = analysis.LRServer

// Guarantees summarizes a unicast connection's hard service guarantees.
type Guarantees struct {
	// Bandwidth is the guaranteed throughput in words per cycle.
	Bandwidth float64
	// WorstCaseLatency bounds the end-to-end latency of any word in
	// cycles (scheduling wait + serialization + traversal).
	WorstCaseLatency int
	// Server is the latency-rate form of the same guarantee.
	Server LRServer
}

// GuaranteesOf returns the analytical guarantees of an open unicast
// connection from its slot reservation (worst path for multipath).
func GuaranteesOf(p *Platform, c *Connection) Guarantees {
	worst := 0
	var bw float64
	var server LRServer
	for _, pa := range c.Fwd.Paths {
		wc := analysis.WorstCaseLatency(pa.InjectSlots, p.Params.SlotWords, len(pa.Path))
		if wc > worst {
			worst = wc
			server = analysis.LRServerFor(pa.InjectSlots, p.Params.SlotWords, len(pa.Path))
		}
		bw += analysis.GuaranteedBandwidth(pa.InjectSlots)
	}
	server.Rho = bw
	return Guarantees{Bandwidth: bw, WorstCaseLatency: worst, Server: server}
}

// --- Dimensioning (requirements -> schedule) ---

// Requirement is one application-level connection demand for the
// dimensioning flow.
type Requirement = dimension.Requirement

// DimensionResult is a complete dimensioning outcome.
type DimensionResult = dimension.Result

// DimensionConfig bounds the dimensioning search.
type DimensionConfig = dimension.Config

// Dimension finds the smallest TDM wheel and slot schedule satisfying
// every requirement. Use the resulting wheel in Params and the slot
// counts in ConnectionSpecs.
func Dimension(m *Mesh, reqs []Requirement, cfg DimensionConfig) (*DimensionResult, error) {
	return dimension.Dimension(m.Graph, reqs, cfg)
}

// Mesh is a built topology with its index helpers (NI/Router lookup).
type Mesh = topology.Mesh

// AllocOptions tune allocator requests directly (advanced use).
type AllocOptions = alloc.Options

// --- Declarative platform specs ---

// PlatformSpec is a JSON-serializable platform description.
type PlatformSpec = spec.Spec

// PlatformInstance is a built spec: platform plus opened connections.
type PlatformInstance = spec.Instance

// ParseSpec reads and validates a JSON platform description.
func ParseSpec(r io.Reader) (*PlatformSpec, error) { return spec.Parse(r) }

// --- Observability ---

// TelemetryRegistry is the deterministic cycle-domain metrics store:
// counters, gauges, histograms, windowed series, configuration spans and
// events. Attach one with Platform.AttachTelemetry and export it with
// WritePrometheus or WriteTelemetryNDJSON.
type TelemetryRegistry = telemetry.Registry

// TelemetryLabel is one key=value metric label.
type TelemetryLabel = telemetry.Label

// ConfigSpan is the structured record of one configuration operation
// (set-up, tear-down or repair): submit and settle cycles plus the
// configuration words spent.
type ConfigSpan = telemetry.Span

// TelemetryEvent is one discrete occurrence (fault activation, stall
// detection, repair) stamped with its cycle.
type TelemetryEvent = telemetry.Event

// NewTelemetryRegistry creates an empty registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// TelemetryL builds a metric label.
func TelemetryL(key, value string) TelemetryLabel { return telemetry.L(key, value) }

// WritePrometheus renders the registry in Prometheus text exposition
// format. Safe to call while the platform is running.
func WritePrometheus(w io.Writer, r *TelemetryRegistry) error {
	return telemetry.WritePrometheus(w, r)
}

// WriteTelemetryNDJSON writes a newline-delimited JSON snapshot of the
// registry (metrics, spans, events), stamped with the given cycle.
func WriteTelemetryNDJSON(w io.Writer, r *TelemetryRegistry, cycle uint64) error {
	return telemetry.WriteNDJSON(w, r, cycle)
}

// Tracer is the deterministic cycle-domain causal tracer: every
// configuration transaction (and, behind the admission service, every
// request) becomes a tree of spans timestamped in simulation cycles.
// Attach one with Platform.AttachTracer before opening connections;
// a platform without a tracer pays zero cost.
type Tracer = tracing.Tracer

// TracerOptions bound the tracer's span/event rings.
type TracerOptions = tracing.Options

// TraceSpan is one finished span of a causal trace.
type TraceSpan = tracing.Span

// TraceSpanRef names a live span (parent for StartChild, target for
// SetAttr/End/Point). The zero value is "no span".
type TraceSpanRef = tracing.SpanRef

// FlightRecorder dumps the tracer's recent spans and events to files
// when something goes wrong (conformance violation, stall, SIGQUIT).
type FlightRecorder = tracing.Recorder

// NewTracer creates a causal tracer.
func NewTracer(opt TracerOptions) *Tracer { return tracing.New(opt) }

// NewFlightRecorder arms a flight recorder over the tracer; dumps write
// to <prefix>-<reason>.ndjson and <prefix>-<reason>.trace.json.
func NewFlightRecorder(t *Tracer, prefix string) *FlightRecorder {
	return tracing.NewRecorder(t, prefix)
}

// WriteChromeTrace renders the trace as Chrome trace-event JSON —
// loadable in Perfetto / chrome://tracing, byte-identical across kernel
// worker counts.
func WriteChromeTrace(w io.Writer, t *Tracer) error { return tracing.WriteChrome(w, t) }

// WriteTraceNDJSON writes the trace as newline-delimited JSON records.
func WriteTraceNDJSON(w io.Writer, t *Tracer) error { return tracing.WriteNDJSON(w, t) }

// SpansByTrace groups finished spans by their trace ID.
func SpansByTrace(spans []TraceSpan) map[uint64][]TraceSpan { return tracing.ByTrace(spans) }

// LinkMonitor samples per-link utilization.
type LinkMonitor = stats.Monitor

// NewLinkMonitor attaches a utilization monitor to a platform.
func NewLinkMonitor(p *Platform) *LinkMonitor { return stats.NewMonitor(p) }

// WaveRecorder records signal waveforms for VCD export.
type WaveRecorder = trace.Recorder

// NewWaveRecorder attaches a waveform recorder to a platform.
func NewWaveRecorder(p *Platform) *WaveRecorder { return trace.New(p.Sim) }

// --- Fault injection and online repair ---

// Fault is one scheduled hardware fault (see internal/fault for the
// models and the determinism contract).
type Fault = fault.Fault

// FaultInjector drives a seeded fault schedule into a platform.
type FaultInjector = fault.Injector

// Fault models.
const (
	// LinkDown kills a data link for the fault window (permanent failure).
	LinkDown = fault.LinkDown
	// PayloadFlip corrupts payload bits crossing a link (soft errors).
	PayloadFlip = fault.PayloadFlip
	// ConfigDrop deletes configuration symbols at the tree root.
	ConfigDrop = fault.ConfigDrop
	// ConfigFlip corrupts configuration symbols at the tree root.
	ConfigFlip = fault.ConfigFlip
	// SlotTableFlip upsets one router slot-table entry.
	SlotTableFlip = fault.SlotTableFlip
)

// InjectFaults attaches a deterministic fault injector to a platform.
func InjectFaults(p *Platform, seed uint64, faults ...Fault) (*FaultInjector, error) {
	return fault.Attach(p, seed, faults...)
}

// HealthMonitor detects stalled connections end to end.
type HealthMonitor = core.HealthMonitor

// NewHealthMonitor attaches a stall detector to a platform; 0 selects the
// default no-progress window.
func NewHealthMonitor(p *Platform, stallTimeout uint64) *HealthMonitor {
	return core.NewHealthMonitor(p, stallTimeout)
}

// RepairResult documents one connection repair and its latency.
type RepairResult = core.RepairResult
