package daelite

// TestScale16x16 gates the tentpole claim of the hierarchical config
// region work: a 16x16 torus — 512 elements, four times the old 7-bit
// ceiling — completes connection set-up, stalled-connection repair and
// teardown entirely through the per-region configuration trees (no
// direct slot-table programming exists outside the decoders), with the
// conformance checkers attached throughout and zero violations.

import (
	"fmt"
	"testing"

	"daelite/internal/conformance"
	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/telemetry"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

func TestScale16x16(t *testing.T) {
	params := core.DefaultParams()
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 16, Height: 16, NIsPerRouter: 1, Wrap: true}, params, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Sim.Shutdown()
	if n := p.Mesh.NumNodes(); n != 512 {
		t.Fatalf("16x16 torus has %d elements, want 512", n)
	}
	if p.Regions.Num() < 2 {
		t.Fatalf("512 elements partitioned into %d region(s)", p.Regions.Num())
	}

	reg := telemetry.NewRegistry()
	ck := conformance.Attach(p, reg, conformance.Options{SampleEvery: 64})
	tr := tracing.New(tracing.Options{})
	p.AttachTracer(tr)

	noViolations := func(stage string) {
		t.Helper()
		ck.CheckNow()
		if v := ck.Violations(); v != 0 {
			t.Fatalf("%s: %d conformance violations, first: %+v", stage, v, ck.Recorded()[0])
		}
	}

	// A seeded batch: row connections whose paths cross several region
	// boundaries, plus a multicast spanning three regions.
	var conns []*core.Connection
	for y := 0; y < 16; y += 3 {
		c, err := p.Open(core.ConnectionSpec{Src: p.Mesh.NI(0, y, 0), Dst: p.Mesh.NI(8, y, 0), SlotsFwd: 2})
		if err != nil {
			t.Fatalf("open row %d: %v", y, err)
		}
		conns = append(conns, c)
	}
	mc, err := p.Open(core.ConnectionSpec{
		Src:      p.Mesh.NI(2, 2, 0),
		Dsts:     []topology.NodeID{p.Mesh.NI(5, 2, 0), p.Mesh.NI(10, 2, 0), p.Mesh.NI(15, 2, 0)},
		SlotsFwd: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	conns = append(conns, mc)
	for _, c := range conns {
		if err := p.AwaitOpen(c, 1_000_000); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range conns[:len(conns)-1] {
		if c.Setup.Regions < 2 {
			t.Fatalf("conn %d (%s) set up through %d region(s), want >= 2", c.ID, c.Setup.Detail, c.Setup.Regions)
		}
	}

	// The causal trace of every regioned set-up must be one root span
	// fanning out into per-region inject children plus a settle child,
	// and its cycle count must reconcile exactly with the telemetry
	// span's SetupCycles — the tracer and the span ledger are two views
	// of one transaction.
	spans := tr.Spans()
	children := map[uint64][]tracing.Span{}
	rootByName := map[string]tracing.Span{}
	for _, s := range spans {
		if s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			rootByName[s.Name] = s
		}
	}
	for _, c := range conns {
		name := fmt.Sprintf("setup #%d", c.Setup.ID)
		root, ok := rootByName[name]
		if !ok {
			t.Fatalf("no trace root %q for connection %d", name, c.ID)
		}
		if got, want := root.Cycles(), c.SetupCycles(); got != want {
			t.Fatalf("conn %d: trace root spans %d cycles, telemetry span %d", c.ID, got, want)
		}
		var injects int
		var settleEnd uint64
		for _, ch := range children[root.ID] {
			switch ch.Cat {
			case "inject":
				injects++
				if ch.Start != root.Start {
					t.Fatalf("conn %d: inject child starts at %d, root at %d", c.ID, ch.Start, root.Start)
				}
				if ch.End > root.End {
					t.Fatalf("conn %d: inject child ends at %d after root %d", c.ID, ch.End, root.End)
				}
			case "settle":
				settleEnd = ch.End
			}
		}
		if injects != c.Setup.Regions {
			t.Fatalf("conn %d: %d inject children, telemetry says %d regions", c.ID, injects, c.Setup.Regions)
		}
		if settleEnd != root.End {
			t.Fatalf("conn %d: settle child ends at %d, root at %d", c.ID, settleEnd, root.End)
		}
	}
	ck.Resync()
	p.Run(2000)
	noViolations("after set-up")

	// Fault and repair: kill a router-router link in the middle of the
	// first row connection's forward path, let the health monitor latch
	// the stall, and repair through the config trees.
	victim := conns[0]
	path := victim.Fwd.Paths[0].Path
	dead := path[len(path)/2]
	src := traffic.NewSource(p.Sim, "scale-src", p.NI(victim.Spec.Src), victim.SrcChannel,
		traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.2, Seed: 11})
	sink := traffic.NewSink(p.Sim, "scale-sink", p.NI(victim.Spec.Dst), victim.DstChannel)
	if _, err := fault.Attach(p, 7, fault.Fault{Kind: fault.LinkDown, Link: dead, From: p.Cycle() + 200}); err != nil {
		t.Fatal(err)
	}
	mon := core.NewHealthMonitor(p, 256)
	if _, ok := p.Sim.RunUntil(func() bool { return len(mon.Stalled()) > 0 }, 50_000); !ok {
		t.Fatal("stall never detected after link failure")
	}
	repaired, err := p.RepairStalled(mon, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) == 0 {
		t.Fatal("RepairStalled repaired nothing")
	}
	ck.Resync()
	before := sink.Received()
	p.Run(2000)
	if got := sink.Received(); got <= before {
		t.Fatalf("no traffic delivered after repair (%d -> %d)", before, got)
	}
	if src.Sent() == 0 {
		t.Fatal("source injected nothing")
	}
	noViolations("after repair")

	// Teardown: close everything through the trees and verify the
	// platform conforms with zero live connections (all slot tables must
	// fold back to idle).
	for _, c := range p.Connections() {
		if err := p.Close(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.CompleteConfig(1_000_000); err != nil {
		t.Fatal(err)
	}
	ck.Resync()
	p.Run(1000)
	noViolations("after teardown")
}
