package daelite

// The causal-trace determinism soak: both trace exports — Chrome
// trace-event JSON and NDJSON — must be byte-identical for every kernel
// worker count. The soak covers the whole span taxonomy on a regioned
// platform: cross-region set-ups (inject fan-out + settle children),
// link failures with stall events, repair spans and teardowns. It is
// the tracing counterpart of TestTelemetryExportsDeterministic.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"daelite/internal/core"
	"daelite/internal/fault"
	"daelite/internal/sim"
	"daelite/internal/telemetry/tracing"
	"daelite/internal/topology"
	"daelite/internal/traffic"
)

// runTraceSoak runs a seeded chaos soak on a three-region 6x6 mesh with
// the tracer attached from the first open, and returns both rendered
// exports.
func runTraceSoak(t *testing.T, workers int, seed uint64, cycles int) (string, string) {
	t.Helper()
	params := core.DefaultParams()
	params.Workers = workers
	params.MaxRegionElements = 24
	p, err := core.NewMeshPlatform(topology.MeshSpec{Width: 6, Height: 6, NIsPerRouter: 1}, params, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Sim.Shutdown()
	tr := tracing.New(tracing.Options{})
	p.AttachTracer(tr)
	rng := sim.NewRNG(seed)

	var conns []*core.Connection
	for opened, tries := 0, 0; opened < 5 && tries < 100; tries++ {
		s := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
		d := p.Mesh.AllNIs[rng.Intn(len(p.Mesh.AllNIs))]
		if s == d {
			continue
		}
		c, err := p.Open(core.ConnectionSpec{Src: s, Dst: d, SlotsFwd: 1 + rng.Intn(2)})
		if err != nil {
			continue
		}
		if err := p.AwaitOpen(c, 1_000_000); err != nil {
			t.Fatal(err)
		}
		traffic.NewSource(p.Sim, fmt.Sprintf("src%d", c.ID), p.NI(s), c.SrcChannel,
			traffic.SourceConfig{Pattern: traffic.CBR, Rate: 0.04 + 0.02*float64(rng.Intn(3)), Seed: rng.Uint64()})
		traffic.NewSink(p.Sim, fmt.Sprintf("sink%d", c.ID), p.NI(d), c.DstChannel)
		conns = append(conns, c)
		opened++
	}

	sites := fault.PickLinks(rng, fault.RouterLinks(p), 2)
	var faults []fault.Fault
	start := p.Cycle()
	for i, l := range sites {
		at := start + uint64((i+1)*cycles/(len(sites)+1))
		faults = append(faults, fault.Fault{Kind: fault.LinkDown, Link: l, From: at})
	}
	if _, err := fault.Attach(p, rng.Uint64(), faults...); err != nil {
		t.Fatal(err)
	}

	mon := core.NewHealthMonitor(p, 256)
	end := start + uint64(cycles)
	for p.Cycle() < end {
		step := uint64(512)
		if rest := end - p.Cycle(); rest < step {
			step = rest
		}
		p.Run(step)
		if len(mon.Stalled()) == 0 {
			continue
		}
		// A repair that finds no capacity left is an expected outcome
		// here (five connections on a 6x6 leave little slack) — the
		// failed attempt still opens and closes its repair span, and
		// the failure path must be just as deterministic.
		_, _ = p.RepairStalled(mon, 1_000_000)
	}

	// Tear one connection down so teardown spans are in the export too —
	// the lowest-ID one, since Connections() is unordered.
	var victim *core.Connection
	for _, c := range p.Connections() {
		if victim == nil || c.ID < victim.ID {
			victim = c
		}
	}
	if victim != nil {
		if err := p.Close(victim); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.CompleteConfig(1_000_000); err != nil {
		t.Fatal(err)
	}

	var chrome, nd strings.Builder
	if err := tracing.WriteChrome(&chrome, tr); err != nil {
		t.Fatal(err)
	}
	if err := tracing.WriteNDJSON(&nd, tr); err != nil {
		t.Fatal(err)
	}
	return chrome.String(), nd.String()
}

// TestTraceExportsDeterministic asserts the tracing determinism
// contract: the exported trace bytes are a pure function of the seed,
// independent of kernel parallelism.
func TestTraceExportsDeterministic(t *testing.T) {
	const seed, cycles = 42, 12000
	chromeRef, ndRef := runTraceSoak(t, 1, seed, cycles)
	// The soak must exercise the whole span taxonomy, or identical
	// exports prove nothing.
	for _, want := range []string{
		`"setup #`, `"inject r0"`, `"inject r1"`, `"settle"`,
		`"teardown #`, `"repair #`, `"stall"`, `"fault"`,
	} {
		if !strings.Contains(chromeRef, want) {
			t.Fatalf("Chrome export missing %s", want)
		}
	}
	if !strings.Contains(ndRef, `"record":"span"`) || !strings.Contains(ndRef, `"record":"trace_event"`) {
		t.Fatal("NDJSON export missing spans or events")
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		chrome, nd := runTraceSoak(t, w, seed, cycles)
		if chrome != chromeRef {
			t.Errorf("workers=%d: Chrome export diverged from sequential (%d vs %d bytes)", w, len(chrome), len(chromeRef))
		}
		if nd != ndRef {
			t.Errorf("workers=%d: NDJSON export diverged from sequential (%d vs %d bytes)", w, len(nd), len(ndRef))
		}
	}
}
